//! A minimal JSON value with a renderer — enough for metric reports,
//! written by hand because this workspace builds without crates.io
//! access (no serde).

use std::fmt;

/// A JSON value. Objects preserve insertion order (reports read better
/// when phases stay in execution order).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number; non-finite floats render as `null`.
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for objects from `(&str, value)` pairs.
    pub fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    // JSON has no NaN/Infinity.
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::String(v)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl JsonValue {
    /// Parses a JSON document (the inverse of [`JsonValue::render`];
    /// same no-crates.io rationale). Accepts standard JSON with
    /// whitespace; rejects trailing garbage.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Maximum container nesting the parser accepts. The recursive-descent
/// parser uses the thread's stack, so untrusted input (`xp compare`
/// baselines, `--explain=json` round-trips) must not be able to drive
/// recursion arbitrarily deep.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object_value(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    /// Four hex digits starting at byte `at` (the body of a `\u` escape).
    fn hex4(&self, at: usize) -> Result<u32, String> {
        let hex = self.bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
        u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_owned())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: join with a following
                                // \uDC00..\uDFFF low surrogate; a lone or
                                // mismatched surrogate half becomes U+FFFD
                                // (same policy as every mainstream parser).
                                let follows_escape = self.bytes.get(self.pos + 5) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 6) == Some(&b'u');
                                let low = if follows_escape {
                                    self.hex4(self.pos + 7).ok()
                                } else {
                                    None
                                };
                                match low {
                                    Some(lo) if (0xDC00..=0xDFFF).contains(&lo) => {
                                        let c = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                        out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                                        self.pos += 10;
                                    }
                                    _ => {
                                        out.push('\u{FFFD}');
                                        self.pos += 4;
                                    }
                                }
                            } else {
                                // Lone low surrogates also map to U+FFFD.
                                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                self.pos += 4;
                            }
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object_value(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.descend()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::from(42u64).render(), "42");
        assert_eq!(JsonValue::from(1.5).render(), "1.5");
        assert_eq!(JsonValue::from(f64::NAN).render(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(JsonValue::from("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(JsonValue::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn renders_nested() {
        let v = JsonValue::object(vec![
            ("xs", JsonValue::Array(vec![1u64.into(), 2u64.into()])),
            ("name", "trial".into()),
        ]);
        assert_eq!(v.render(), r#"{"xs":[1,2],"name":"trial"}"#);
    }

    #[test]
    fn large_integers_stay_integral() {
        assert_eq!(JsonValue::from(1_000_000u64).render(), "1000000");
    }

    #[test]
    fn parse_round_trips_render() {
        let v = JsonValue::object(vec![
            ("xs", JsonValue::Array(vec![1u64.into(), 2.5.into()])),
            ("name", "tri\"al\n".into()),
            ("flag", JsonValue::Bool(false)),
            ("nothing", JsonValue::Null),
            (
                "nested",
                JsonValue::object(vec![("k", JsonValue::Array(vec![]))]),
            ),
        ]);
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parse_accepts_whitespace() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , -2.5e1 ] ,\n\"b\": \"\\u0041\" } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-25.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("nul").is_err());
        assert!(JsonValue::parse("{} trailing").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn nesting_is_capped() {
        // Exactly at the cap parses; one level deeper is rejected
        // instead of risking a stack overflow on untrusted input.
        let ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(JsonValue::parse(&ok).is_ok());
        let deep_arrays = format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = JsonValue::parse(&deep_arrays).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        let deep_objects = format!(
            "{}0{}",
            "{\"k\":".repeat(MAX_DEPTH + 1),
            "}".repeat(MAX_DEPTH + 1)
        );
        assert!(JsonValue::parse(&deep_objects).is_err());
        // Unbalanced-but-deep input must also fail cheaply.
        assert!(JsonValue::parse(&"[".repeat(100_000)).is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        // \uD83D\uDE00 is the UTF-16 surrogate pair for U+1F600 (😀).
        let v = JsonValue::parse(r#""\uD83D\uDE00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // Astral chars survive a render → parse round trip as raw UTF-8.
        let rendered = JsonValue::from("a\u{1F600}b").render();
        assert_eq!(
            JsonValue::parse(&rendered).unwrap().as_str(),
            Some("a\u{1F600}b")
        );
    }

    #[test]
    fn lone_surrogates_become_replacement_chars() {
        // Lone high, lone low, and a high followed by a non-surrogate
        // escape: the lone half degrades to U+FFFD, the rest is kept.
        assert_eq!(
            JsonValue::parse(r#""\uD800x""#).unwrap().as_str(),
            Some("\u{FFFD}x")
        );
        assert_eq!(
            JsonValue::parse(r#""\uDC00""#).unwrap().as_str(),
            Some("\u{FFFD}")
        );
        assert_eq!(
            JsonValue::parse(r#""\uD800A""#).unwrap().as_str(),
            Some("\u{FFFD}A")
        );
        // Truncated escapes are still hard errors.
        assert!(JsonValue::parse(r#""\uD8"#).is_err());
        assert!(JsonValue::parse(r#""\uZZZZ""#).is_err());
    }

    #[test]
    fn parse_rejects_trailing_garbage_after_valid_values() {
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("[1] [2]").is_err());
        assert!(JsonValue::parse("{\"a\":1}x").is_err());
        assert!(JsonValue::parse("\"s\"\"t\"").is_err());
    }

    #[test]
    fn accessors() {
        let v = JsonValue::parse(r#"{"n": 3, "s": "x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
        assert!(v.get("n").unwrap().get("nope").is_none());
    }
}
