//! A minimal JSON value with a renderer — enough for metric reports,
//! written by hand because this workspace builds without crates.io
//! access (no serde).

use std::fmt;

/// A JSON value. Objects preserve insertion order (reports read better
/// when phases stay in execution order).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number; non-finite floats render as `null`.
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for objects from `(&str, value)` pairs.
    pub fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    // JSON has no NaN/Infinity.
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::String(v)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::from(42u64).render(), "42");
        assert_eq!(JsonValue::from(1.5).render(), "1.5");
        assert_eq!(JsonValue::from(f64::NAN).render(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(JsonValue::from("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(JsonValue::from("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn renders_nested() {
        let v = JsonValue::object(vec![
            ("xs", JsonValue::Array(vec![1u64.into(), 2u64.into()])),
            ("name", "trial".into()),
        ]);
        assert_eq!(v.render(), r#"{"xs":[1,2],"name":"trial"}"#);
    }

    #[test]
    fn large_integers_stay_integral() {
        assert_eq!(JsonValue::from(1_000_000u64).render(), "1000000");
    }
}
