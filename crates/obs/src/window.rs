//! [`RollingWindow`]: recent-past views over a live [`Hist`].
//!
//! A cumulative histogram answers "since boot"; an operator watching a
//! server needs "over the last 10 seconds". The window keeps a ring of
//! fixed-interval [`HistSnapshot`] *deltas* — one per elapsed tick of
//! the configured interval — and merges the most recent ticks on read,
//! reusing the snapshot algebra ([`HistSnapshot::since`] to close a
//! tick, [`HistSnapshot::merge`] to fold a span) instead of inventing
//! a second histogram type.
//!
//! Ticks advance lazily, on both writes and reads: whoever touches the
//! window first after an interval boundary closes the elapsed ticks
//! (empty ticks close as empty deltas), so an idle server's windows
//! decay to all-zero without any background thread. A read never
//! blocks a recording for long — recording is the usual lock-free
//! [`Hist::record`] plus a tick check on an atomic; the mutex below is
//! only taken when a tick actually closes or a span is merged.
//!
//! The view is quantized to whole ticks: `window(span)` merges the
//! still-open tick with the last `span / interval` closed ticks, so
//! the reported span is accurate to one interval. That is the right
//! trade for SLO dashboards — a 60 s p99 that is really 59–61 s of
//! data — and what keeps reads O(slots) with no timestamps stored per
//! sample.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::hist::{Hist, HistSnapshot};
use crate::metric::Counter;

struct WindowState {
    /// Snapshot of the live histogram at the last closed tick boundary.
    last_snap: HistSnapshot,
    /// The currently open tick (number of whole intervals since epoch).
    open_tick: u64,
    /// Per-tick deltas, slot = tick % slots.
    ring: Vec<HistSnapshot>,
    /// Which tick each slot's delta belongs to (slots from evicted
    /// ticks are detected by mismatch, not cleared eagerly).
    ring_tick: Vec<u64>,
}

/// A live histogram plus a ring of per-interval snapshot deltas,
/// answering percentile/count queries over the recent past.
pub struct RollingWindow {
    hist: Hist,
    interval: Duration,
    epoch: Instant,
    /// Fast-path mirror of `state.open_tick`: recordings skip the mutex
    /// entirely while the tick has not moved.
    open_tick: AtomicU64,
    state: Mutex<WindowState>,
    /// Incremented once per closed tick (empty or not); detached by
    /// default, routable into a registry counter.
    ticks: Counter,
}

impl RollingWindow {
    /// A window ticking every `interval`, retaining `slots` closed
    /// ticks — queries can span up to `interval × slots` of history.
    pub fn new(interval: Duration, slots: usize) -> Self {
        Self::with_hist(Hist::new(), interval, slots)
    }

    /// Like [`RollingWindow::new`], but recording into an existing
    /// histogram handle (e.g. one registered in a [`crate::Registry`],
    /// so the cumulative view stays scrapeable while this window serves
    /// the recent-past view of the same samples).
    pub fn with_hist(hist: Hist, interval: Duration, slots: usize) -> Self {
        let slots = slots.max(1);
        assert!(!interval.is_zero(), "window interval must be non-zero");
        RollingWindow {
            state: Mutex::new(WindowState {
                last_snap: hist.snapshot(),
                open_tick: 0,
                ring: vec![HistSnapshot::default(); slots],
                ring_tick: vec![u64::MAX; slots],
            }),
            hist,
            interval,
            epoch: Instant::now(),
            open_tick: AtomicU64::new(0),
            ticks: Counter::new(),
        }
    }

    /// Routes tick-close events into `counter` (the serving layer
    /// passes its registered `serve.window.ticks` handle).
    pub fn with_ticks_counter(mut self, counter: Counter) -> Self {
        self.ticks = counter;
        self
    }

    /// The tick interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// A clone of the underlying cumulative histogram handle (clones
    /// share buckets), for feeding the window from another component.
    pub fn hist(&self) -> Hist {
        self.hist.clone()
    }

    /// Records one value and advances the tick clock if an interval
    /// boundary has passed.
    pub fn record(&self, v: u64) {
        self.hist.record(v);
        self.advance();
    }

    /// Records a duration as nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds a per-query snapshot (e.g. a solver's `task_latency`) into
    /// the window, attributing every sample to the open tick.
    pub fn merge_snapshot(&self, snap: &HistSnapshot) {
        self.hist.merge_snapshot(snap);
        self.advance();
    }

    /// Closes every tick the wall clock has moved past. Cheap when the
    /// tick has not moved (one atomic load).
    pub fn advance(&self) {
        let now_tick = (self.epoch.elapsed().as_nanos() / self.interval.as_nanos()) as u64;
        if self.open_tick.load(Ordering::Relaxed) == now_tick {
            return;
        }
        let mut state = self.state.lock().expect("window state poisoned");
        self.advance_locked(&mut state, now_tick);
    }

    fn advance_locked(&self, state: &mut WindowState, now_tick: u64) {
        if state.open_tick >= now_tick {
            return;
        }
        let slots = state.ring.len() as u64;
        // Close the tick that was open: its delta is everything recorded
        // since its boundary snapshot.
        let current = self.hist.snapshot();
        let closing = state.open_tick;
        let slot = (closing % slots) as usize;
        state.ring[slot] = current.since(&state.last_snap);
        state.ring_tick[slot] = closing;
        // Intervening ticks (idle gaps) close as empty deltas; only the
        // ones still inside the ring need materializing.
        let first_gap = (closing + 1).max(now_tick.saturating_sub(slots));
        for t in first_gap..now_tick {
            let slot = (t % slots) as usize;
            state.ring[slot] = HistSnapshot::default();
            state.ring_tick[slot] = t;
        }
        self.ticks.add(now_tick - state.open_tick);
        state.last_snap = current;
        state.open_tick = now_tick;
        self.open_tick.store(now_tick, Ordering::Relaxed);
    }

    /// The merged view of (approximately) the last `span`: the open
    /// tick plus the last `span / interval` closed ticks, rounded down.
    /// An idle window reads empty once `span` has elapsed untouched.
    pub fn window(&self, span: Duration) -> HistSnapshot {
        let now_tick = (self.epoch.elapsed().as_nanos() / self.interval.as_nanos()) as u64;
        let mut state = self.state.lock().expect("window state poisoned");
        self.advance_locked(&mut state, now_tick);
        let back = (span.as_nanos() / self.interval.as_nanos()) as u64;
        let mut merged = self.hist.snapshot().since(&state.last_snap);
        let oldest = state.open_tick.saturating_sub(back);
        for (slot, snap) in state.ring.iter().enumerate() {
            let tick = state.ring_tick[slot];
            if tick != u64::MAX && tick >= oldest && tick < state.open_tick {
                merged.merge(snap);
            }
        }
        merged
    }

    /// The all-time cumulative snapshot (what the registry exports).
    pub fn cumulative(&self) -> HistSnapshot {
        self.hist.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A window whose ticks can only be closed explicitly, by recording
    /// through a long-interval window and driving `advance_locked`
    /// manually via a forced tick — tests drive time, not sleeps.
    fn forced_tick(w: &RollingWindow, tick: u64) {
        let mut state = w.state.lock().unwrap();
        w.advance_locked(&mut state, tick);
    }

    fn long_window(slots: usize) -> RollingWindow {
        // One-hour ticks: the wall clock will never advance one on its
        // own inside a test, so `forced_tick` is the only clock.
        RollingWindow::new(Duration::from_secs(3600), slots)
    }

    #[test]
    fn open_tick_is_visible_immediately() {
        let w = long_window(4);
        w.record(100);
        w.record(200);
        let s = w.window(Duration::from_secs(3600));
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 300);
    }

    #[test]
    fn closed_ticks_age_out_of_the_span() {
        let w = long_window(8);
        w.record(10); // tick 0
        forced_tick(&w, 1);
        w.record(20); // tick 1
        forced_tick(&w, 2);
        w.record(30); // tick 2 (open)

        // A span of 2 ticks sees the open tick plus 2 closed ones.
        let s = w.window(Duration::from_secs(2 * 3600));
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 60);
        // A span of 1 tick drops tick 0.
        let s = w.window(Duration::from_secs(3600));
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 50);
        // A zero span is just the open tick.
        let s = w.window(Duration::from_secs(1));
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 30);
    }

    #[test]
    fn idle_gaps_close_as_empty_and_windows_drain_to_zero() {
        let w = long_window(4);
        w.record(10);
        // Jump far past the ring: every slot's tick is stale.
        forced_tick(&w, 100);
        let s = w.window(Duration::from_secs(4 * 3600));
        assert!(s.is_empty(), "idle window must read empty: {s:?}");
        // The cumulative histogram still remembers everything.
        assert_eq!(w.cumulative().count, 1);
    }

    #[test]
    fn ring_wraparound_keeps_only_resident_ticks() {
        let w = long_window(3);
        for tick in 0..6u64 {
            w.record(tick + 1);
            forced_tick(&w, tick + 1);
        }
        // Ticks 3,4,5 are resident (ring of 3); 0,1,2 are gone.
        let s = w.window(Duration::from_secs(100 * 3600));
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 4 + 5 + 6);
    }

    #[test]
    fn ticks_counter_counts_closures() {
        let c = Counter::new();
        let w = long_window(4).with_ticks_counter(c.clone());
        forced_tick(&w, 5);
        assert_eq!(c.get(), 5);
        forced_tick(&w, 5); // no movement, no count
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn percentiles_come_from_the_merged_span() {
        let w = long_window(8);
        for v in 1..=50u64 {
            w.record(v);
        }
        forced_tick(&w, 1);
        for v in 51..=100u64 {
            w.record(v);
        }
        let s = w.window(Duration::from_secs(3600));
        assert_eq!(s.count, 100);
        assert!(s.p50() >= 50 && s.p50() <= 53, "p50={}", s.p50());
        // Narrowing to the open tick shifts the median up.
        let open = w.window(Duration::ZERO);
        assert_eq!(open.count, 50);
        assert!(open.p50() >= 75, "open p50={}", open.p50());
    }

    #[test]
    fn shared_hist_feeds_the_window() {
        let h = Hist::new();
        let w = RollingWindow::with_hist(h.clone(), Duration::from_secs(3600), 4);
        h.record(42); // recorded through the shared handle
        let s = w.window(Duration::from_secs(3600));
        assert_eq!(s.count, 1);
    }
}
