//! Per-query structured tracing: span buffers, typed prune events, and
//! the merged span tree behind the CLI's `--explain`.
//!
//! The design constraint is the workspace's determinism contract
//! (`crates/core/src/algorithms/shared.rs`): tracing must observe the
//! solvers without feeding anything back into their decisions, and the
//! merged output must be stable under work stealing. Both follow from
//! the span identity scheme: every record carries a `(worker, seq)` id,
//! where `seq` is a per-worker monotonic counter, so merging the
//! per-worker buffers with a `(worker, seq)` sort is reproducible for
//! any steal schedule — only wall-clock timestamps vary between runs.
//!
//! Recording is contention-free on the hot path: each worker appends to
//! its own buffer (the buffer mutex exists for the drain at the query
//! barrier, not for inter-worker sharing), and a disabled tracer —
//! [`Tracer::off`], or a live tracer whose sampling gate is closed —
//! reduces every call to one branch.
//!
//! Parent attribution uses two mechanisms:
//! * the coordinator publishes a **global scope** ([`Tracer::set_scope`])
//!   between executor barriers — worker-side records parent to it;
//! * a worker can refine that with a thread-local parent
//!   ([`Tracer::parented`]) while expanding one node, so prune events
//!   nest under the node span that produced them.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::json::JsonValue;

/// Worker slots: slot 0 is the coordinator thread, executor worker `i`
/// maps to slot `1 + i % 32`. More than 32 workers share slots, which
/// stays correct (the slot mutex serializes them) but interleaves seqs.
const WORKER_SLOTS: usize = 33;
const SLOT_BITS: u32 = 48;
const NONE_ID: u64 = u64::MAX;

thread_local! {
    static CUR_SLOT: Cell<usize> = const { Cell::new(0) };
    static CUR_PARENT: Cell<u64> = const { Cell::new(NONE_ID) };
}

fn pack(slot: usize, seq: u64) -> u64 {
    ((slot as u64) << SLOT_BITS) | (seq & ((1 << SLOT_BITS) - 1))
}

/// Installs the calling thread as executor worker `worker` for trace
/// routing; restored on drop. The executor wraps each worker loop (and
/// its inline path) in this so lower layers — index traversal, buffer
/// pool — need no explicit worker argument.
pub fn worker_scope(worker: usize) -> WorkerScope {
    let slot = 1 + worker % (WORKER_SLOTS - 1);
    let prev = CUR_SLOT.with(|c| c.replace(slot));
    WorkerScope { prev }
}

/// RAII guard from [`worker_scope`].
pub struct WorkerScope {
    prev: usize,
}

impl Drop for WorkerScope {
    fn drop(&mut self) {
        CUR_SLOT.with(|c| c.set(self.prev));
    }
}

/// Identity of a span: packed `(worker slot, per-slot sequence)`.
/// Ordering ids orders records worker-major, which is exactly the
/// deterministic merge order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The absent id (roots have this as their parent).
    pub const NONE: SpanId = SpanId(NONE_ID);

    /// True for [`SpanId::NONE`].
    pub fn is_none(&self) -> bool {
        self.0 == NONE_ID
    }

    /// Worker slot (0 = coordinator, `1 + i` = executor worker `i`).
    pub fn worker(&self) -> usize {
        (self.0 >> SLOT_BITS) as usize
    }

    /// Per-worker monotonic sequence number.
    pub fn seq(&self) -> u64 {
        self.0 & ((1 << SLOT_BITS) - 1)
    }
}

/// Typed payload attached to point events (and available to spans).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePayload {
    /// A subtree/candidate was retired by the MaxDom convergence test
    /// (Theorem 2) or a node-level dominance bound.
    NodePruned {
        /// Node (blob) id of the pruned subtree, when known.
        node_id: u64,
        /// MaxDom contribution bound at the prune site.
        max_dom: u32,
        /// MinDom contribution bound at the prune site.
        min_dom: u32,
        /// Enumeration layer (edit distance) being processed.
        layer: u32,
    },
    /// A candidate was rejected because its rank lower bound already
    /// exceeds the best penalty (Theorem 3).
    CandidateRejected {
        /// The rank lower bound that triggered the rejection.
        rank_lower_bound: u32,
    },
    /// A candidate's rank bounds converged to an exact rank.
    RankConverged {
        /// The exact rank.
        rank: u32,
    },
    /// A tree node was read and decoded.
    NodeVisited {
        /// Node (blob) id, i.e. its first page.
        node_id: u64,
    },
    /// A buffer-pool read served from cache.
    CacheHit,
    /// A task executed off another worker's deque.
    TaskStolen {
        /// The worker the task was stolen from.
        victim: usize,
    },
}

impl TracePayload {
    fn summary(&self) -> String {
        match self {
            TracePayload::NodePruned {
                node_id,
                max_dom,
                min_dom,
                layer,
            } => format!("node={node_id} max_dom={max_dom} min_dom={min_dom} layer={layer}"),
            TracePayload::CandidateRejected { rank_lower_bound } => {
                format!("rank_lb={rank_lower_bound}")
            }
            TracePayload::RankConverged { rank } => format!("rank={rank}"),
            TracePayload::NodeVisited { node_id } => format!("node={node_id}"),
            TracePayload::CacheHit => String::new(),
            TracePayload::TaskStolen { victim } => format!("victim={victim}"),
        }
    }

    fn to_json(self) -> JsonValue {
        let typed = |t: &str, fields: Vec<(&str, JsonValue)>| {
            let mut obj = vec![("type", JsonValue::from(t))];
            obj.extend(fields);
            JsonValue::object(obj)
        };
        match self {
            TracePayload::NodePruned {
                node_id,
                max_dom,
                min_dom,
                layer,
            } => typed(
                "node_pruned",
                vec![
                    ("node_id", JsonValue::from(node_id)),
                    ("max_dom", JsonValue::from(u64::from(max_dom))),
                    ("min_dom", JsonValue::from(u64::from(min_dom))),
                    ("layer", JsonValue::from(u64::from(layer))),
                ],
            ),
            TracePayload::CandidateRejected { rank_lower_bound } => typed(
                "candidate_rejected",
                vec![(
                    "rank_lower_bound",
                    JsonValue::from(u64::from(rank_lower_bound)),
                )],
            ),
            TracePayload::RankConverged { rank } => typed(
                "rank_converged",
                vec![("rank", JsonValue::from(u64::from(rank)))],
            ),
            TracePayload::NodeVisited { node_id } => {
                typed("node_visited", vec![("node_id", JsonValue::from(node_id))])
            }
            TracePayload::CacheHit => typed("cache_hit", vec![]),
            TracePayload::TaskStolen { victim } => typed(
                "task_stolen",
                vec![("victim", JsonValue::from(victim as u64))],
            ),
        }
    }
}

/// One finished span or point event in a worker buffer.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span identity (worker slot + per-worker sequence).
    pub id: SpanId,
    /// Parent span, [`SpanId::NONE`] for roots.
    pub parent: SpanId,
    /// Static span name (the canonical metric names double as event
    /// names, e.g. `prune.maxdom`).
    pub name: &'static str,
    /// Start offset from the tracer epoch, nanoseconds.
    pub start_ns: u64,
    /// End offset; equal to `start_ns` for point events.
    pub end_ns: u64,
    /// Typed payload, if any.
    pub payload: Option<TracePayload>,
}

impl SpanRecord {
    /// Span duration in nanoseconds (zero for point events).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// True for zero-duration point events.
    pub fn is_event(&self) -> bool {
        self.end_ns == self.start_ns
    }
}

/// A span begun but not yet ended. Returned by [`Tracer::begin`]; a
/// disabled tracer returns a *dead* span whose `end` is free.
#[must_use = "end the span with Tracer::end, or it never reaches the buffer"]
#[derive(Debug)]
pub struct OpenSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
}

impl OpenSpan {
    /// The span's id, for [`Tracer::set_scope`]. Dead spans return
    /// [`SpanId::NONE`], which scopes children to the root.
    pub fn id(&self) -> SpanId {
        SpanId(self.id)
    }
}

#[derive(Debug)]
struct Buffer {
    seq: AtomicU64,
    records: Mutex<Vec<SpanRecord>>,
}

#[derive(Debug)]
struct TracerState {
    enabled: AtomicBool,
    epoch: Instant,
    scope: AtomicU64,
    buffers: Box<[Buffer; WORKER_SLOTS]>,
}

impl TracerState {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A cheaply clonable tracing handle. [`Tracer::off`] carries no state
/// at all; [`Tracer::new`] allocates per-worker buffers, and the
/// sampling gate ([`Tracer::set_enabled`]) turns recording on and off
/// per query without reallocating anything.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    state: Option<Arc<TracerState>>,
}

impl Tracer {
    /// A live tracer, initially enabled.
    pub fn new() -> Self {
        let buffers = std::array::from_fn(|_| Buffer {
            seq: AtomicU64::new(0),
            records: Mutex::new(Vec::new()),
        });
        Tracer {
            state: Some(Arc::new(TracerState {
                enabled: AtomicBool::new(true),
                epoch: Instant::now(),
                scope: AtomicU64::new(NONE_ID),
                buffers: Box::new(buffers),
            })),
        }
    }

    /// The permanently-disabled tracer: every call is a no-op behind a
    /// single branch, so untraced paths pay nothing measurable.
    pub fn off() -> Self {
        Tracer { state: None }
    }

    /// True when records are currently being collected.
    pub fn is_on(&self) -> bool {
        self.state
            .as_deref()
            .is_some_and(|s| s.enabled.load(Ordering::Relaxed))
    }

    /// Opens or closes the sampling gate (e.g. `--trace-sample N`
    /// enables the tracer on every N-th query only). No-op on
    /// [`Tracer::off`].
    pub fn set_enabled(&self, on: bool) {
        if let Some(s) = self.state.as_deref() {
            s.enabled.store(on, Ordering::Relaxed);
        }
    }

    fn live(&self) -> Option<&TracerState> {
        let s = self.state.as_deref()?;
        s.enabled.load(Ordering::Relaxed).then_some(s)
    }

    /// Begins a span on the calling thread's worker slot. The parent is
    /// the thread-local parent if set ([`Tracer::parented`]), else the
    /// coordinator's global scope.
    pub fn begin(&self, name: &'static str) -> OpenSpan {
        let Some(state) = self.live() else {
            return OpenSpan {
                id: NONE_ID,
                parent: NONE_ID,
                name,
                start_ns: 0,
            };
        };
        let slot = CUR_SLOT.with(Cell::get);
        let seq = state.buffers[slot].seq.fetch_add(1, Ordering::Relaxed);
        let local = CUR_PARENT.with(Cell::get);
        let parent = if local != NONE_ID {
            local
        } else {
            state.scope.load(Ordering::Relaxed)
        };
        OpenSpan {
            id: pack(slot, seq),
            parent,
            name,
            start_ns: state.now_ns(),
        }
    }

    /// Ends a span, committing its record. Dead spans are dropped.
    pub fn end(&self, span: OpenSpan) {
        if span.id == NONE_ID {
            return;
        }
        let Some(state) = self.state.as_deref() else {
            return;
        };
        // Deliberately not gated on `enabled`: a span begun inside the
        // sampling window is committed even if the gate closed while it
        // ran, so trees never contain dangling parents.
        let end_ns = state.now_ns();
        let slot = (span.id >> SLOT_BITS) as usize;
        state.buffers[slot]
            .records
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(SpanRecord {
                id: SpanId(span.id),
                parent: SpanId(span.parent),
                name: span.name,
                start_ns: span.start_ns,
                end_ns,
                payload: None,
            });
    }

    /// Records a zero-duration point event with a typed payload.
    pub fn event(&self, name: &'static str, payload: TracePayload) {
        let Some(state) = self.live() else {
            return;
        };
        let slot = CUR_SLOT.with(Cell::get);
        let seq = state.buffers[slot].seq.fetch_add(1, Ordering::Relaxed);
        let local = CUR_PARENT.with(Cell::get);
        let parent = if local != NONE_ID {
            local
        } else {
            state.scope.load(Ordering::Relaxed)
        };
        let now = state.now_ns();
        state.buffers[slot]
            .records
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(SpanRecord {
                id: SpanId(pack(slot, seq)),
                parent: SpanId(parent),
                name,
                start_ns: now,
                end_ns: now,
                payload: Some(payload),
            });
    }

    /// Publishes the global scope: worker-side records begun after this
    /// call parent to `id`. Only the coordinator calls this, between
    /// executor barriers, so workers observe a stable scope for the
    /// whole parallel section.
    pub fn set_scope(&self, id: SpanId) {
        if let Some(s) = self.state.as_deref() {
            s.scope.store(id.0, Ordering::Relaxed);
        }
    }

    /// Clears the global scope (records parent to the root again).
    pub fn clear_scope(&self) {
        self.set_scope(SpanId::NONE);
    }

    /// Sets the calling thread's parent to `span` until the guard
    /// drops; used to nest per-node events under the node's span.
    pub fn parented(&self, span: &OpenSpan) -> ParentGuard {
        let prev = CUR_PARENT.with(|c| c.replace(span.id));
        ParentGuard { prev }
    }

    /// Drains every worker buffer into a merged [`TraceReport`] and
    /// resets sequence counters and scope for the next query. Records
    /// are sorted by `(worker, seq)`, the deterministic merge order.
    pub fn drain(&self) -> TraceReport {
        let Some(state) = self.state.as_deref() else {
            return TraceReport::default();
        };
        let mut records = Vec::new();
        for buf in state.buffers.iter() {
            records.append(&mut buf.records.lock().unwrap_or_else(PoisonError::into_inner));
            buf.seq.store(0, Ordering::Relaxed);
        }
        state.scope.store(NONE_ID, Ordering::Relaxed);
        records.sort_by_key(|r| r.id);
        TraceReport { records }
    }
}

/// RAII guard from [`Tracer::parented`].
pub struct ParentGuard {
    prev: u64,
}

impl Drop for ParentGuard {
    fn drop(&mut self) {
        CUR_PARENT.with(|c| c.set(self.prev));
    }
}

/// The merged, ordered records of one traced query, with tree
/// rendering for `--explain`.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    records: Vec<SpanRecord>,
}

impl TraceReport {
    /// All records in `(worker, seq)` order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// True when nothing was traced (tracer off or query unsampled).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records (spans + events) named `name` — e.g. counting
    /// `prune.maxdom` events to reconcile against the counter of the
    /// same name.
    pub fn count_events(&self, name: &str) -> u64 {
        self.records.iter().filter(|r| r.name == name).count() as u64
    }

    /// Children adjacency (indices into `records`) plus root indices.
    /// Records whose parent was never committed become roots.
    fn adjacency(&self) -> (Vec<usize>, Vec<Vec<usize>>) {
        let index_of: std::collections::BTreeMap<SpanId, usize> = self
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| (r.id, i))
            .collect();
        let mut children = vec![Vec::new(); self.records.len()];
        let mut roots = Vec::new();
        for (i, r) in self.records.iter().enumerate() {
            match index_of.get(&r.parent) {
                Some(&p) if !r.parent.is_none() => children[p].push(i),
                _ => roots.push(i),
            }
        }
        (roots, children)
    }

    /// Human-readable span tree. Durations are per span; sibling point
    /// events with the same name are aggregated as `name ×N` (their
    /// individual payloads remain available via `--explain=json`).
    pub fn render_tree(&self) -> String {
        let (roots, children) = self.adjacency();
        let mut out = format!("trace ({} spans):\n", self.records.len());
        for &r in &roots {
            self.render_node(r, &children, 1, &mut out);
        }
        out
    }

    fn render_node(&self, i: usize, children: &[Vec<usize>], depth: usize, out: &mut String) {
        let r = &self.records[i];
        out.push_str(&"  ".repeat(depth));
        out.push_str(r.name);
        if !r.is_event() {
            out.push(' ');
            out.push_str(&fmt_ns(r.duration_ns()));
        }
        if let Some(p) = &r.payload {
            let s = p.summary();
            if !s.is_empty() {
                out.push_str(&format!(" ({s})"));
            }
        }
        out.push('\n');
        // Aggregate repeated sibling point events by name at their
        // first occurrence; everything else renders in merge order.
        let kids = &children[i];
        let mut done: Vec<&str> = Vec::new();
        for &c in kids {
            let rec = &self.records[c];
            if rec.is_event() {
                if done.contains(&rec.name) {
                    continue;
                }
                let n = kids
                    .iter()
                    .filter(|&&k| self.records[k].is_event() && self.records[k].name == rec.name)
                    .count();
                if n > 1 {
                    done.push(rec.name);
                    out.push_str(&"  ".repeat(depth + 1));
                    out.push_str(&format!("{} ×{n}\n", rec.name));
                    continue;
                }
            }
            self.render_node(c, children, depth + 1, out);
        }
    }

    /// The span tree as nested JSON (shares the `JsonValue` codepath
    /// with every other machine-readable output in the workspace).
    pub fn to_json(&self) -> JsonValue {
        let (roots, children) = self.adjacency();
        let spans = roots
            .iter()
            .map(|&r| self.node_json(r, &children))
            .collect();
        JsonValue::object(vec![
            ("spans", JsonValue::from(self.records.len() as u64)),
            ("tree", JsonValue::Array(spans)),
        ])
    }

    fn node_json(&self, i: usize, children: &[Vec<usize>]) -> JsonValue {
        let r = &self.records[i];
        let mut fields = vec![
            ("name", JsonValue::from(r.name)),
            ("worker", JsonValue::from(r.id.worker() as u64)),
            ("seq", JsonValue::from(r.id.seq())),
            ("start_ns", JsonValue::from(r.start_ns)),
            ("dur_ns", JsonValue::from(r.duration_ns())),
        ];
        if let Some(p) = r.payload {
            fields.push(("payload", p.to_json()));
        }
        let kids = &children[i];
        if !kids.is_empty() {
            fields.push((
                "children",
                JsonValue::Array(kids.iter().map(|&c| self.node_json(c, children)).collect()),
            ));
        }
        JsonValue::object(fields)
    }
}

/// Formats nanoseconds with a human-scale unit.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_records_nothing() {
        let t = Tracer::off();
        let span = t.begin("query");
        t.event("prune.maxdom", TracePayload::CacheHit);
        t.end(span);
        assert!(t.drain().is_empty());
        assert!(!t.is_on());
    }

    #[test]
    fn sampling_gate_toggles_recording() {
        let t = Tracer::new();
        t.set_enabled(false);
        t.event("e", TracePayload::CacheHit);
        assert!(t.drain().is_empty());
        t.set_enabled(true);
        t.event("e", TracePayload::CacheHit);
        assert_eq!(t.drain().records().len(), 1);
    }

    #[test]
    fn spans_nest_under_scope_and_parent() {
        let t = Tracer::new();
        let query = t.begin("query");
        t.set_scope(query.id());
        let node = t.begin("node.expand");
        {
            let _g = t.parented(&node);
            t.event(
                "prune.maxdom",
                TracePayload::NodePruned {
                    node_id: 7,
                    max_dom: 3,
                    min_dom: 1,
                    layer: 2,
                },
            );
            t.event(
                "prune.maxdom",
                TracePayload::NodePruned {
                    node_id: 9,
                    max_dom: 2,
                    min_dom: 1,
                    layer: 2,
                },
            );
        }
        t.end(node);
        t.clear_scope();
        t.end(query);
        let report = t.drain();
        assert_eq!(report.count_events("prune.maxdom"), 2);
        let tree = report.render_tree();
        assert!(tree.contains("query"), "{tree}");
        assert!(tree.contains("prune.maxdom ×2"), "{tree}");
        // The events nest under node.expand, which nests under query.
        let node_rec = report
            .records()
            .iter()
            .find(|r| r.name == "node.expand")
            .unwrap();
        let query_rec = report.records().iter().find(|r| r.name == "query").unwrap();
        assert_eq!(node_rec.parent, query_rec.id);
        for ev in report.records().iter().filter(|r| r.name == "prune.maxdom") {
            assert_eq!(ev.parent, node_rec.id);
        }
    }

    #[test]
    fn worker_ids_make_merges_stable() {
        let t = Tracer::new();
        let query = t.begin("query");
        t.set_scope(query.id());
        std::thread::scope(|s| {
            for w in 0..4usize {
                let t = t.clone();
                s.spawn(move || {
                    let _scope = worker_scope(w);
                    for _ in 0..5 {
                        let span = t.begin("task");
                        t.end(span);
                    }
                });
            }
        });
        t.clear_scope();
        t.end(query);
        let report = t.drain();
        assert_eq!(report.count_events("task"), 20);
        // Records are sorted (worker, seq): per-worker seqs are 0..5 in
        // order regardless of interleaving.
        let mut per_worker: std::collections::BTreeMap<usize, Vec<u64>> = Default::default();
        for r in report.records().iter().filter(|r| r.name == "task") {
            per_worker
                .entry(r.id.worker())
                .or_default()
                .push(r.id.seq());
        }
        assert_eq!(per_worker.len(), 4);
        for (_, seqs) in per_worker {
            assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn drain_resets_for_the_next_query() {
        let t = Tracer::new();
        let a = t.begin("query");
        t.end(a);
        assert_eq!(t.drain().records().len(), 1);
        let b = t.begin("query");
        t.end(b);
        let report = t.drain();
        assert_eq!(report.records().len(), 1);
        assert_eq!(report.records()[0].id.seq(), 0, "seq resets per query");
    }

    #[test]
    fn json_tree_round_trips_through_the_parser() {
        let t = Tracer::new();
        let q = t.begin("query");
        t.set_scope(q.id());
        t.event("exec.tasks_stolen", TracePayload::TaskStolen { victim: 2 });
        t.clear_scope();
        t.end(q);
        let json = t.drain().to_json().render();
        let parsed = JsonValue::parse(&json).expect("trace JSON must parse");
        assert_eq!(parsed.get("spans").and_then(JsonValue::as_f64), Some(2.0));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.20s");
    }
}
