//! The two metric primitives: [`Counter`] and [`Timer`] (+ its RAII
//! [`Span`] guard).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonically increasing event counter.
///
/// Clones share the same underlying atomic, so a counter handed out by a
/// [`crate::Registry`] can be stashed inside a tree or buffer pool and
/// bumped on hot paths without going back through the registry map.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero, not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // Relaxed is enough: metrics are aggregated, never used for
        // cross-thread synchronisation.
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A duration accumulator: number of recordings, total and maximum
/// nanoseconds. Cheap enough to keep on query hot paths; rich enough to
/// answer "how long did phase X take, and was any single run an outlier".
#[derive(Clone, Debug, Default)]
pub struct Timer {
    inner: Arc<TimerInner>,
}

#[derive(Debug, Default)]
struct TimerInner {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Timer {
    /// A fresh timer, not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one elapsed duration.
    pub fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.inner.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Times a closure and records its duration.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let _span = self.span();
        f()
    }

    /// Starts an RAII span; the elapsed time is recorded when the guard
    /// drops.
    pub fn span(&self) -> Span {
        Span {
            timer: self.clone(),
            started: Instant::now(),
        }
    }

    /// Point-in-time view of the accumulated values.
    pub fn snapshot(&self) -> TimerSnapshot {
        TimerSnapshot {
            count: self.inner.count.load(Ordering::Relaxed),
            total_ns: self.inner.total_ns.load(Ordering::Relaxed),
            max_ns: self.inner.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// RAII guard returned by [`Timer::span`]; records on drop.
#[derive(Debug)]
pub struct Span {
    timer: Timer,
    started: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        self.timer.record(self.started.elapsed());
    }
}

/// Frozen view of a [`Timer`]'s accumulators.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimerSnapshot {
    /// Number of recorded spans.
    pub count: u64,
    /// Sum of all recorded durations, nanoseconds.
    pub total_ns: u64,
    /// Longest single recorded duration, nanoseconds.
    pub max_ns: u64,
}

impl TimerSnapshot {
    /// Total recorded time as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns)
    }

    /// Mean recorded duration (zero when nothing was recorded).
    pub fn mean(&self) -> Duration {
        self.total_ns
            .checked_div(self.count)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Delta against an earlier snapshot of the same timer (`max_ns` is
    /// carried over, not subtracted — a maximum has no meaningful delta).
    pub fn since(&self, earlier: &TimerSnapshot) -> TimerSnapshot {
        TimerSnapshot {
            count: self.count.saturating_sub(earlier.count),
            total_ns: self.total_ns.saturating_sub(earlier.total_ns),
            max_ns: self.max_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shares_state_across_clones() {
        let a = Counter::new();
        let b = a.clone();
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 5);
    }

    #[test]
    fn timer_records_spans() {
        let t = Timer::new();
        t.record(Duration::from_micros(10));
        t.record(Duration::from_micros(30));
        let s = t.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 40_000);
        assert_eq!(s.max_ns, 30_000);
        assert_eq!(s.mean(), Duration::from_micros(20));
    }

    #[test]
    fn span_records_on_drop() {
        let t = Timer::new();
        {
            let _span = t.span();
        }
        assert_eq!(t.snapshot().count, 1);
    }

    #[test]
    fn time_returns_closure_value() {
        let t = Timer::new();
        let v = t.time(|| 7);
        assert_eq!(v, 7);
        assert_eq!(t.snapshot().count, 1);
    }

    #[test]
    fn timer_snapshot_delta() {
        let t = Timer::new();
        t.record(Duration::from_nanos(100));
        let before = t.snapshot();
        t.record(Duration::from_nanos(250));
        let delta = t.snapshot().since(&before);
        assert_eq!(delta.count, 1);
        assert_eq!(delta.total_ns, 250);
        assert_eq!(delta.max_ns, 250);
    }
}
