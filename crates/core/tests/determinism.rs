//! Thread-count determinism: the parallel executor's contract (see
//! `crates/core/src/algorithms/shared.rs`) promises the refined query is
//! *bit-identical* for every thread count and steal schedule. These
//! property tests run seeded workloads through AdvancedBS and KcRBased
//! at 1, 2, 4 and 8 threads and compare every answer field exactly —
//! penalties by their `f64` bit patterns, not within a tolerance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use wnsk_core::{
    answer_advanced, answer_kcr, AdvancedOptions, KcrOptions, RefinedQuery, WhyNotQuestion,
};
use wnsk_geo::{Point, WorldBounds};
use wnsk_index::{Dataset, KcrTree, ObjectId, SetRTree, SpatialKeywordQuery, SpatialObject};
use wnsk_storage::{BufferPool, BufferPoolConfig, MemBackend};
use wnsk_text::{Kernel, KeywordSet};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn random_dataset(n: usize, vocab: u32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let objects = (0..n)
        .map(|_| {
            let n_terms = rng.gen_range(1..=5);
            let doc = KeywordSet::from_ids((0..n_terms).map(|_| rng.gen_range(0..vocab)));
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
                doc,
            }
        })
        .collect();
    Dataset::new(objects, WorldBounds::unit())
}

/// A question whose missing objects genuinely sit below the top-k.
fn make_question(ds: &Dataset, vocab: u32, seed: u64) -> Option<WhyNotQuestion> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let q = SpatialKeywordQuery::new(
        Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
        KeywordSet::from_ids((0..rng.gen_range(2..=4)).map(|_| rng.gen_range(0..vocab))),
        5,
        0.5,
    );
    let mut scored: Vec<(ObjectId, f64)> = ds
        .objects()
        .iter()
        .map(|o| (o.id, ds.score(o, &q)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    let lo = q.k + 2;
    let hi = (q.k + 40).min(scored.len());
    for _ in 0..100 {
        let id = scored[rng.gen_range(lo..hi)].0;
        if ds.rank_of(id, &q) > q.k {
            return Some(WhyNotQuestion::new(q, vec![id], 0.5));
        }
    }
    None
}

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(
        Arc::new(MemBackend::new()),
        BufferPoolConfig::default(),
    ))
}

/// Exact comparison, penalties as bit patterns.
fn assert_identical(base: &RefinedQuery, other: &RefinedQuery, algo: &str, threads: usize) {
    assert_eq!(
        base.doc, other.doc,
        "{algo} t={threads}: refined keyword set diverged"
    );
    assert_eq!(base.k, other.k, "{algo} t={threads}: refined k diverged");
    assert_eq!(base.rank, other.rank, "{algo} t={threads}: rank diverged");
    assert_eq!(
        base.edit_distance, other.edit_distance,
        "{algo} t={threads}: edit distance diverged"
    );
    assert_eq!(
        base.penalty.to_bits(),
        other.penalty.to_bits(),
        "{algo} t={threads}: penalty bits diverged ({} vs {})",
        base.penalty,
        other.penalty
    );
}

#[test]
fn kcr_refined_query_is_identical_across_thread_counts() {
    let vocab = 40;
    let mut covered = 0;
    for seed in 0..6u64 {
        let ds = random_dataset(400, vocab, 1000 + seed);
        let tree = KcrTree::build(pool(), &ds, 8).unwrap();
        let Some(question) = make_question(&ds, vocab, 2000 + seed) else {
            continue;
        };
        covered += 1;
        let baseline = answer_kcr(&ds, &tree, &question, KcrOptions::default()).unwrap();
        for threads in THREAD_COUNTS {
            // A small batch size forces several batches per layer, so the
            // pool really interleaves batch and node tasks.
            let opts = KcrOptions {
                threads,
                batch_size: 16,
                ..KcrOptions::default()
            };
            let ans = answer_kcr(&ds, &tree, &question, opts).unwrap();
            assert_identical(&baseline.refined, &ans.refined, "KcRBased", threads);
        }
    }
    assert!(covered >= 3, "only {covered} seeds produced a workload");
}

#[test]
fn advanced_refined_query_is_identical_across_thread_counts() {
    let vocab = 40;
    let mut covered = 0;
    for seed in 0..6u64 {
        let ds = random_dataset(400, vocab, 3000 + seed);
        let tree = SetRTree::build(pool(), &ds, 8).unwrap();
        let Some(question) = make_question(&ds, vocab, 4000 + seed) else {
            continue;
        };
        covered += 1;
        let baseline = answer_advanced(&ds, &tree, &question, AdvancedOptions::default()).unwrap();
        for threads in THREAD_COUNTS {
            let opts = AdvancedOptions {
                threads,
                ..AdvancedOptions::default()
            };
            let ans = answer_advanced(&ds, &tree, &question, opts).unwrap();
            assert_identical(&baseline.refined, &ans.refined, "AdvancedBS", threads);
        }
    }
    assert!(covered >= 3, "only {covered} seeds produced a workload");
}

/// The kernel A/B invariant at the answer level: swapping the bitset
/// kernel for the scalar merge-scan — at any thread count — must leave
/// the refined query bit-identical, for both solvers. The kernel is a
/// wall-time knob, never a semantics knob (docs/KERNELS.md).
#[test]
fn kernels_agree_bit_for_bit_across_thread_counts() {
    let vocab = 40;
    let mut covered = 0;
    for seed in 0..6u64 {
        let ds = random_dataset(400, vocab, 5000 + seed);
        let kcr_tree = KcrTree::build(pool(), &ds, 8).unwrap();
        let setr_tree = SetRTree::build(pool(), &ds, 8).unwrap();
        let Some(question) = make_question(&ds, vocab, 6000 + seed) else {
            continue;
        };
        covered += 1;
        let kcr_base = answer_kcr(&ds, &kcr_tree, &question, KcrOptions::default()).unwrap();
        let adv_base =
            answer_advanced(&ds, &setr_tree, &question, AdvancedOptions::default()).unwrap();
        for kernel in Kernel::ALL {
            for threads in THREAD_COUNTS {
                let ans = answer_kcr(
                    &ds,
                    &kcr_tree,
                    &question,
                    KcrOptions {
                        threads,
                        kernel,
                        ..KcrOptions::default()
                    },
                )
                .unwrap();
                assert_identical(
                    &kcr_base.refined,
                    &ans.refined,
                    &format!("KcRBased[{kernel}]"),
                    threads,
                );
                let ans = answer_advanced(
                    &ds,
                    &setr_tree,
                    &question,
                    AdvancedOptions {
                        threads,
                        kernel,
                        ..AdvancedOptions::default()
                    },
                )
                .unwrap();
                assert_identical(
                    &adv_base.refined,
                    &ans.refined,
                    &format!("AdvancedBS[{kernel}]"),
                    threads,
                );
            }
        }
    }
    assert!(covered >= 3, "only {covered} seeds produced a workload");
}

/// The serving layer's observability contract at the solver level:
/// running with the whole observation plane enabled — tree tracer on,
/// stats folded into a metrics registry, task-latency snapshots merged
/// into a rolling window — must leave the refined query bit-identical
/// in every solver × thread × kernel cell, and for serial runs every
/// deterministic work metric identical too (parallel work counters are
/// steal-schedule noisy by design, so only t=1 pins them exactly).
#[test]
fn observation_leaves_answers_and_work_metrics_bit_identical() {
    use std::time::Duration;
    use wnsk_core::AlgoStats;
    use wnsk_obs::{Registry, RollingWindow, Tracer};

    // The deterministic work-metric tuple: everything in AlgoStats that
    // does not depend on wall clock or steal schedule at t=1.
    fn work(s: &AlgoStats) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
        (
            s.io,
            s.candidates_total,
            s.pruned_by_filter,
            s.pruned_by_bound,
            s.queries_run,
            s.nodes_expanded,
            s.degraded,
            s.initial_rank,
        )
    }

    let vocab = 40;
    let mut covered = 0;
    for seed in 0..4u64 {
        let ds = random_dataset(400, vocab, 8000 + seed);
        let Some(question) = make_question(&ds, vocab, 9000 + seed) else {
            continue;
        };
        covered += 1;

        let kcr_plain = KcrTree::build(pool(), &ds, 8).unwrap();
        let setr_plain = SetRTree::build(pool(), &ds, 8).unwrap();
        let mut kcr_obs = KcrTree::build(pool(), &ds, 8).unwrap();
        let mut setr_obs = SetRTree::build(pool(), &ds, 8).unwrap();
        let registry = Registry::new();
        kcr_obs.register_metrics(&registry, "kcr.");
        setr_obs.register_metrics(&registry, "setr.");
        let tracer = Tracer::new();
        kcr_obs.set_tracer(tracer.clone());
        setr_obs.set_tracer(tracer.clone());
        // An hour-long tick so the window state is wall-clock stable.
        let window = RollingWindow::new(Duration::from_secs(3600), 60);

        for kernel in Kernel::ALL {
            for threads in [1, 2, 4] {
                let opts = KcrOptions {
                    threads,
                    kernel,
                    batch_size: 16,
                    ..KcrOptions::default()
                };
                let base = answer_kcr(&ds, &kcr_plain, &question, opts).unwrap();
                let ans = answer_kcr(&ds, &kcr_obs, &question, opts).unwrap();
                let report = tracer.drain();
                assert!(
                    !report.is_empty(),
                    "KcRBased[{kernel}] t={threads}: the observed run must trace"
                );
                ans.stats.record_into(&registry);
                window.merge_snapshot(&ans.stats.task_latency);
                assert_identical(
                    &base.refined,
                    &ans.refined,
                    &format!("KcRBased[{kernel}]+obs"),
                    threads,
                );
                if threads == 1 {
                    assert_eq!(
                        work(&base.stats),
                        work(&ans.stats),
                        "KcRBased[{kernel}] t=1: observation moved a work metric"
                    );
                }

                let opts = AdvancedOptions {
                    threads,
                    kernel,
                    ..AdvancedOptions::default()
                };
                let base = answer_advanced(&ds, &setr_plain, &question, opts).unwrap();
                let ans = answer_advanced(&ds, &setr_obs, &question, opts).unwrap();
                let report = tracer.drain();
                assert!(
                    !report.is_empty(),
                    "AdvancedBS[{kernel}] t={threads}: the observed run must trace"
                );
                ans.stats.record_into(&registry);
                window.merge_snapshot(&ans.stats.task_latency);
                assert_identical(
                    &base.refined,
                    &ans.refined,
                    &format!("AdvancedBS[{kernel}]+obs"),
                    threads,
                );
                if threads == 1 {
                    assert_eq!(
                        work(&base.stats),
                        work(&ans.stats),
                        "AdvancedBS[{kernel}] t=1: observation moved a work metric"
                    );
                }
            }
        }
        // The observation plane really observed something.
        assert!(
            registry.snapshot().counter("core.candidates") > 0,
            "the registry fold must record solver work"
        );
        assert!(
            window.cumulative().count > 0,
            "the rolling window must absorb task latencies"
        );
    }
    assert!(covered >= 2, "only {covered} seeds produced a workload");
}

#[test]
fn parallel_runs_agree_with_every_opt_combination() {
    // Opt1/Opt3 interact with the parallel paths (live limits, counting
    // scans, per-worker dominator caches): toggling them must never
    // change the answer either.
    let vocab = 30;
    let ds = random_dataset(300, vocab, 7100);
    let tree = SetRTree::build(pool(), &ds, 8).unwrap();
    let Some(question) = make_question(&ds, vocab, 7200) else {
        panic!("seed 7200 must produce a workload");
    };
    let baseline = answer_advanced(&ds, &tree, &question, AdvancedOptions::default()).unwrap();
    for early_stop in [false, true] {
        for keyword_set_filtering in [false, true] {
            for threads in [1, 4] {
                let opts = AdvancedOptions {
                    early_stop,
                    keyword_set_filtering,
                    threads,
                    ..AdvancedOptions::default()
                };
                let ans = answer_advanced(&ds, &tree, &question, opts).unwrap();
                assert_identical(
                    &baseline.refined,
                    &ans.refined,
                    &format!("AdvancedBS(es={early_stop},ksf={keyword_set_filtering})"),
                    threads,
                );
            }
        }
    }
}
