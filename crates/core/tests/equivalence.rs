//! Cross-algorithm correctness: BS, AdvancedBS (in every ablation
//! configuration, serial and parallel) and KcRBased must all return a
//! refined query with the *optimal* penalty, which a brute-force sweep
//! over the full candidate space certifies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wnsk_core::{
    answer_advanced, answer_approx_kcr, answer_basic, answer_kcr, AdvancedOptions,
    CandidateEnumerator, KcrOptions, WhyNotContext, WhyNotEngine, WhyNotError, WhyNotQuestion,
};
use wnsk_geo::{Point, WorldBounds};
use wnsk_index::{Dataset, ObjectId, SpatialKeywordQuery, SpatialObject};
use wnsk_text::KeywordSet;

fn random_dataset(n: usize, vocab: u32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let objects = (0..n)
        .map(|_| {
            let n_terms = rng.gen_range(1..=5);
            let doc = KeywordSet::from_ids((0..n_terms).map(|_| rng.gen_range(0..vocab)));
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
                doc,
            }
        })
        .collect();
    Dataset::new(objects, WorldBounds::unit())
}

fn random_query(rng: &mut StdRng, vocab: u32, k: usize) -> SpatialKeywordQuery {
    let n_terms = rng.gen_range(1..=3);
    SpatialKeywordQuery::new(
        Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
        KeywordSet::from_ids((0..n_terms).map(|_| rng.gen_range(0..vocab))),
        k,
        [0.3, 0.5, 0.7][rng.gen_range(0..3)],
    )
}

/// Picks missing objects ranked strictly below the top-k but not too deep
/// (keeps brute force fast).
fn pick_missing(
    ds: &Dataset,
    q: &SpatialKeywordQuery,
    count: usize,
    rng: &mut StdRng,
) -> Vec<ObjectId> {
    let mut scored: Vec<(ObjectId, f64)> = ds
        .objects()
        .iter()
        .map(|o| (o.id, ds.score(o, q)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    let lo = q.k + 2;
    let hi = (q.k + 30).min(scored.len());
    let mut picked = Vec::new();
    let mut tries = 0;
    while picked.len() < count && tries < 200 {
        tries += 1;
        let idx = rng.gen_range(lo..hi);
        let id = scored[idx].0;
        // The pick must be *strictly* missing (rank > k even with ties).
        if ds.rank_of(id, q) > q.k && !picked.contains(&id) {
            picked.push(id);
        }
    }
    picked
}

/// Brute-force optimum: min over the basic refinement and every candidate
/// keyword set, with ranks computed by exhaustive scoring.
fn brute_force_optimal(ds: &Dataset, question: &WhyNotQuestion) -> f64 {
    let initial_rank = question
        .missing
        .iter()
        .map(|&m| ds.rank_of(m, &question.query))
        .max()
        .unwrap();
    let ctx = WhyNotContext::new(ds, question, initial_rank).unwrap();
    let enumerator = CandidateEnumerator::new(&ctx);
    let mut best = ctx.penalty.baseline_penalty();
    for cand in enumerator.all(false) {
        let q_s = question.query.with_doc(cand.doc.clone());
        let rank = question
            .missing
            .iter()
            .map(|&m| ds.rank_of(m, &q_s))
            .max()
            .unwrap();
        let p = ctx.penalty.penalty(cand.edit_distance, rank);
        if p < best {
            best = p;
        }
    }
    best
}

fn setup(
    seed: u64,
    n: usize,
    vocab: u32,
    k: usize,
    missing: usize,
) -> Option<(WhyNotEngine, WhyNotQuestion)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = random_dataset(n, vocab, seed);
    let q = random_query(&mut rng, vocab, k);
    let m = pick_missing(&ds, &q, missing, &mut rng);
    if m.len() < missing {
        return None;
    }
    let question = WhyNotQuestion::new(q, m, [0.3, 0.5, 0.7][rng.gen_range(0..3)]);
    let engine =
        WhyNotEngine::build_with(ds, 8, wnsk_storage::BufferPoolConfig::default()).unwrap();
    Some((engine, question))
}

#[test]
fn all_algorithms_match_brute_force_single_missing() {
    let mut checked = 0;
    for seed in 0..12u64 {
        let Some((engine, question)) = setup(seed, 250, 25, 5, 1) else {
            continue;
        };
        let expected = brute_force_optimal(engine.dataset(), &question);
        let bs = answer_basic(engine.dataset(), engine.setr(), &question).unwrap();
        let adv = answer_advanced(
            engine.dataset(),
            engine.setr(),
            &question,
            AdvancedOptions::default(),
        )
        .unwrap();
        let kcr = answer_kcr(
            engine.dataset(),
            engine.kcr(),
            &question,
            KcrOptions::default(),
        )
        .unwrap();
        assert!(
            (bs.refined.penalty - expected).abs() < 1e-9,
            "seed {seed}: BS {} vs brute {expected}",
            bs.refined.penalty
        );
        assert!(
            (adv.refined.penalty - expected).abs() < 1e-9,
            "seed {seed}: AdvancedBS {} vs brute {expected}",
            adv.refined.penalty
        );
        assert!(
            (kcr.refined.penalty - expected).abs() < 1e-9,
            "seed {seed}: KcRBased {} vs brute {expected}",
            kcr.refined.penalty
        );
        checked += 1;
    }
    assert!(checked >= 8, "too few usable seeds ({checked})");
}

#[test]
fn all_algorithms_match_brute_force_multi_missing() {
    let mut checked = 0;
    for seed in 100..108u64 {
        let Some((engine, question)) = setup(seed, 200, 20, 4, 2) else {
            continue;
        };
        let expected = brute_force_optimal(engine.dataset(), &question);
        for answer in [
            answer_basic(engine.dataset(), engine.setr(), &question).unwrap(),
            answer_advanced(
                engine.dataset(),
                engine.setr(),
                &question,
                AdvancedOptions::default(),
            )
            .unwrap(),
            answer_kcr(
                engine.dataset(),
                engine.kcr(),
                &question,
                KcrOptions::default(),
            )
            .unwrap(),
        ] {
            assert!(
                (answer.refined.penalty - expected).abs() < 1e-9,
                "seed {seed}: got {} vs brute {expected}",
                answer.refined.penalty
            );
        }
        checked += 1;
    }
    assert!(checked >= 5, "too few usable seeds ({checked})");
}

#[test]
fn every_ablation_configuration_is_exact() {
    let (engine, question) = setup(7, 250, 25, 5, 1).expect("seed 7 must be usable");
    let expected = brute_force_optimal(engine.dataset(), &question);
    for early_stop in [false, true] {
        for ordered in [false, true] {
            for filtering in [false, true] {
                let opts = AdvancedOptions {
                    early_stop,
                    ordered_enumeration: ordered,
                    keyword_set_filtering: filtering,
                    ..AdvancedOptions::default()
                };
                let ans =
                    answer_advanced(engine.dataset(), engine.setr(), &question, opts).unwrap();
                assert!(
                    (ans.refined.penalty - expected).abs() < 1e-9,
                    "opts {opts:?}: {} vs {expected}",
                    ans.refined.penalty
                );
            }
        }
    }
}

#[test]
fn parallel_matches_serial() {
    let (engine, question) = setup(13, 300, 25, 5, 1).expect("seed 13 must be usable");
    let serial = answer_advanced(
        engine.dataset(),
        engine.setr(),
        &question,
        AdvancedOptions::default(),
    )
    .unwrap();
    for threads in [2, 4] {
        let par = answer_advanced(
            engine.dataset(),
            engine.setr(),
            &question,
            AdvancedOptions {
                threads,
                ..AdvancedOptions::default()
            },
        )
        .unwrap();
        assert!((par.refined.penalty - serial.refined.penalty).abs() < 1e-9);
        let kcr_par = answer_kcr(
            engine.dataset(),
            engine.kcr(),
            &question,
            KcrOptions {
                threads,
                ..KcrOptions::default()
            },
        )
        .unwrap();
        let kcr_ser = answer_kcr(
            engine.dataset(),
            engine.kcr(),
            &question,
            KcrOptions {
                threads: 1,
                ..KcrOptions::default()
            },
        )
        .unwrap();
        assert!((kcr_par.refined.penalty - kcr_ser.refined.penalty).abs() < 1e-9);
    }
}

#[test]
fn approximate_never_beats_exact_and_converges() {
    let (engine, question) = setup(21, 250, 25, 5, 1).expect("seed 21 must be usable");
    let exact = answer_kcr(
        engine.dataset(),
        engine.kcr(),
        &question,
        KcrOptions::default(),
    )
    .unwrap();
    let mut last = f64::INFINITY;
    for t in [1, 4, 16, 64, 4096] {
        let approx = answer_approx_kcr(
            engine.dataset(),
            engine.kcr(),
            &question,
            KcrOptions::default(),
            t,
        )
        .unwrap();
        assert!(
            approx.refined.penalty >= exact.refined.penalty - 1e-9,
            "sample {t} beat the exact optimum"
        );
        // Larger samples can only help (the sample is a growing prefix).
        assert!(approx.refined.penalty <= last + 1e-9);
        last = approx.refined.penalty;
    }
    // A sample covering the whole space equals the exact answer.
    assert!((last - exact.refined.penalty).abs() < 1e-9);
}

#[test]
fn refined_query_revives_the_missing_objects() {
    for seed in [3u64, 9, 15] {
        let Some((engine, question)) = setup(seed, 250, 25, 5, 1) else {
            continue;
        };
        let ans = engine.answer(&question).unwrap();
        let refined_query = question.query.with_doc(ans.refined.doc.clone());
        for &m in &question.missing {
            let rank = engine.dataset().rank_of(m, &refined_query);
            assert!(
                rank <= ans.refined.k,
                "seed {seed}: missing {m:?} ranks {rank} > k' = {}",
                ans.refined.k
            );
        }
    }
}

#[test]
fn figure1_example_optimum() {
    // The running example of Fig. 1 / Table I. Exhaustive evaluation gives
    // the optimum penalty 5/12 ≈ 0.4167, achieved by doc' = {t1,t2,t3}
    // with R(m,q') = 2 (the paper's own q4 up to rounding).
    //
    // Note: the paper's Table I claims q2 = (1, {t2,t3}) retrieves m with
    // Δk = 0, but by the paper's own scores o2 = (0.9, TSim 1/3) still
    // out-ranks m = (0.5, TSim 2/3) under {t2,t3} (0.6167 > 0.5833), so
    // R(m, q2) = 2 and q2's true penalty is 0.5833. The table row is
    // inconsistent with Fig. 1; our algorithms return the true optimum.
    let t = |ids: &[u32]| KeywordSet::from_ids(ids.iter().copied());
    let objects = vec![
        SpatialObject {
            id: ObjectId(0),
            loc: Point::new(5.0, 0.0),
            doc: t(&[1, 2, 3]),
        }, // m
        SpatialObject {
            id: ObjectId(0),
            loc: Point::new(8.0, 0.0),
            doc: t(&[1]),
        },
        SpatialObject {
            id: ObjectId(0),
            loc: Point::new(1.0, 0.0),
            doc: t(&[1, 3]),
        },
        SpatialObject {
            id: ObjectId(0),
            loc: Point::new(6.0, 0.0),
            doc: t(&[1, 2]),
        },
    ];
    let world = WorldBounds::new(wnsk_geo::Rect::new(
        Point::new(0.0, 0.0),
        Point::new(10.0, 0.0),
    ));
    let ds = Dataset::new(objects, world);
    let q = SpatialKeywordQuery::new(Point::new(0.0, 0.0), t(&[1, 2]), 1, 0.5);
    let question = WhyNotQuestion::new(q, vec![ObjectId(0)], 0.5);
    let engine =
        WhyNotEngine::build_with(ds, 2, wnsk_storage::BufferPoolConfig::default()).unwrap();
    let expected = 5.0 / 12.0;
    for ans in [
        engine.answer_basic(&question).unwrap(),
        engine
            .answer_advanced(&question, AdvancedOptions::default())
            .unwrap(),
        engine.answer_kcr(&question, KcrOptions::default()).unwrap(),
    ] {
        assert!(
            (ans.refined.penalty - expected).abs() < 1e-9,
            "penalty {} ≠ 5/12",
            ans.refined.penalty
        );
        assert_eq!(ans.refined.k, 2);
        assert_eq!(ans.refined.doc, t(&[1, 2, 3]));
    }
}

#[test]
fn not_missing_is_reported() {
    let (engine, mut question) = setup(5, 200, 20, 5, 1).expect("seed 5 must be usable");
    // Replace the missing object with the top-1 object.
    let top = engine.top_k(&question.query).unwrap()[0].0;
    question.missing = vec![top];
    match engine.answer(&question) {
        Err(WhyNotError::NotMissing { object, rank }) => {
            assert_eq!(object, top);
            assert!(rank <= question.query.k);
        }
        other => panic!("expected NotMissing, got {other:?}"),
    }
}

#[test]
fn stats_are_populated() {
    let (engine, question) = setup(31, 250, 25, 5, 1).expect("seed 31 must be usable");
    let bs = engine.answer_basic(&question).unwrap();
    assert!(bs.stats.queries_run > 0);
    assert!(bs.stats.candidates_total > 0);
    let adv = engine
        .answer_advanced(&question, AdvancedOptions::default())
        .unwrap();
    // The optimisations must actually skip work relative to BS.
    assert!(adv.stats.queries_run <= bs.stats.queries_run);
    let kcr = engine.answer_kcr(&question, KcrOptions::default()).unwrap();
    assert!(kcr.stats.nodes_expanded > 0);
}

#[test]
fn alternative_similarity_models_are_exact() {
    // Footnote 1 of the paper: the algorithms extend to other coefficient
    // models. All three solvers must stay optimal under Dice and cosine.
    use wnsk_text::TextModel;
    for model in [TextModel::Dice, TextModel::Cosine] {
        let mut checked = 0;
        for seed in 300..312u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let ds = random_dataset(200, 20, seed);
            let q = random_query(&mut rng, 20, 4).with_model(model);
            let m = pick_missing(&ds, &q, 1, &mut rng);
            if m.is_empty() {
                continue;
            }
            let question = WhyNotQuestion::new(q, m, 0.5);
            let engine =
                WhyNotEngine::build_with(ds, 8, wnsk_storage::BufferPoolConfig::default()).unwrap();
            let expected = brute_force_optimal(engine.dataset(), &question);
            for ans in [
                answer_basic(engine.dataset(), engine.setr(), &question).unwrap(),
                answer_advanced(
                    engine.dataset(),
                    engine.setr(),
                    &question,
                    AdvancedOptions::default(),
                )
                .unwrap(),
                answer_kcr(
                    engine.dataset(),
                    engine.kcr(),
                    &question,
                    KcrOptions::default(),
                )
                .unwrap(),
            ] {
                assert!(
                    (ans.refined.penalty - expected).abs() < 1e-9,
                    "{model:?} seed {seed}: {} vs brute {expected}",
                    ans.refined.penalty
                );
            }
            checked += 1;
        }
        assert!(checked >= 6, "{model:?}: too few usable seeds ({checked})");
    }
}

#[test]
fn kcr_batch_size_does_not_change_the_answer() {
    let (engine, question) = setup(17, 250, 25, 5, 1).expect("seed 17 must be usable");
    let reference = answer_kcr(
        engine.dataset(),
        engine.kcr(),
        &question,
        KcrOptions::default(),
    )
    .unwrap();
    for batch_size in [1usize, 7, 64, 10_000] {
        let ans = answer_kcr(
            engine.dataset(),
            engine.kcr(),
            &question,
            KcrOptions {
                batch_size,
                ..KcrOptions::default()
            },
        )
        .unwrap();
        assert!(
            (ans.refined.penalty - reference.refined.penalty).abs() < 1e-9,
            "batch {batch_size}: {} vs {}",
            ans.refined.penalty,
            reference.refined.penalty
        );
    }
}

#[test]
fn kcr_initial_rank_hint_is_bit_identical_to_the_scan() {
    // The serving layer derives R(M, q) from cached top-k lists and
    // passes it back as `initial_rank_hint`; a correct hint must not
    // change the answer in any observable way.
    let mut checked = 0;
    for seed in 0..12u64 {
        let Some((engine, question)) = setup(seed, 250, 25, 5, 1) else {
            continue;
        };
        let scanned = answer_kcr(
            engine.dataset(),
            engine.kcr(),
            &question,
            KcrOptions::default(),
        )
        .unwrap();
        assert!(scanned.stats.initial_rank > question.query.k as u64);
        let hinted = answer_kcr(
            engine.dataset(),
            engine.kcr(),
            &question,
            KcrOptions {
                initial_rank_hint: Some(scanned.stats.initial_rank as usize),
                ..KcrOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            scanned.refined.penalty.to_bits(),
            hinted.refined.penalty.to_bits()
        );
        assert_eq!(scanned.refined.doc, hinted.refined.doc);
        assert_eq!(scanned.refined.k, hinted.refined.k);
        assert_eq!(scanned.refined.edit_distance, hinted.refined.edit_distance);
        assert_eq!(scanned.stats.initial_rank, hinted.stats.initial_rank);
        checked += 1;
    }
    assert!(checked >= 8, "too few usable seeds ({checked})");
}

#[test]
fn kcr_rejects_a_hint_that_contradicts_missingness() {
    let (engine, question) = setup(17, 250, 25, 5, 1).expect("seed 17 must be usable");
    let err = answer_kcr(
        engine.dataset(),
        engine.kcr(),
        &question,
        KcrOptions {
            initial_rank_hint: Some(question.query.k), // rank ≤ k: not missing
            ..KcrOptions::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, WhyNotError::NotMissing { .. }));
}
