//! Crash-recovery determinism: an engine rebuilt from the base dataset
//! plus the committed WAL prefix must be *bit-identical* to a
//! never-crashed twin that applied the same prefix in memory — same
//! epoch, same top-k lists (score bits included), and the same refined
//! query from every solver, at every thread count, under both text
//! kernels.
//!
//! The crash is simulated with a scripted `FaultBackend` torn write at a
//! randomized WAL offset: the in-flight commit's page loses its second
//! half (power-loss-style), the ingest loop stops, and recovery has to
//! truncate the torn tail and replay the survivors.
//!
//! Seeded from `WNSK_CHAOS_SEED` like the chaos suite, so the CI matrix
//! pins reproducible crash offsets while local runs explore new ones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use wnsk_core::{
    AdvancedOptions, KcrOptions, Mutation, RefinedQuery, WhyNotEngine, WhyNotQuestion,
};
use wnsk_geo::{Point, WorldBounds};
use wnsk_index::{Dataset, ObjectId, SpatialKeywordQuery, SpatialObject};
use wnsk_storage::{
    BufferPool, BufferPoolConfig, FaultBackend, FaultKind, FaultPlan, MemBackend, RetryPolicy,
};
use wnsk_text::{Kernel, KeywordSet};

const VOCAB: u32 = 30;
const FANOUT: usize = 8;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn chaos_seed() -> u64 {
    match std::env::var("WNSK_CHAOS_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("WNSK_CHAOS_SEED must be a decimal u64, got {s:?}: {e}")),
        Err(std::env::VarError::NotPresent) => 0xC0FFEE,
        Err(e) => panic!("WNSK_CHAOS_SEED is unreadable: {e}"),
    }
}

fn random_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let objects = (0..n)
        .map(|_| {
            let n_terms = rng.gen_range(1..=5);
            let doc = KeywordSet::from_ids((0..n_terms).map(|_| rng.gen_range(0..VOCAB)));
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
                doc,
            }
        })
        .collect();
    Dataset::new(objects, WorldBounds::unit())
}

/// A mutation script that is valid when applied in order: removals and
/// updates only ever name ids that are live at that point (tracked
/// against a simulation of the evolving live set).
fn mutation_script(ds: &Dataset, n_ops: usize, seed: u64) -> Vec<Mutation> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1067);
    let mut live: Vec<u32> = (0..ds.len() as u32).collect();
    let mut next_id = ds.len() as u32;
    (0..n_ops)
        .map(|_| {
            let roll = rng.gen_range(0..6u32);
            if live.is_empty() || roll < 3 {
                let loc = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
                let n_terms = rng.gen_range(1..=5);
                let doc = KeywordSet::from_ids((0..n_terms).map(|_| rng.gen_range(0..VOCAB)));
                live.push(next_id);
                next_id += 1;
                Mutation::Insert { loc, doc }
            } else if roll < 5 {
                let i = rng.gen_range(0..live.len());
                let id = live.swap_remove(i);
                Mutation::Remove { id: ObjectId(id) }
            } else {
                let id = live[rng.gen_range(0..live.len())];
                let n_terms = rng.gen_range(1..=5);
                let doc = KeywordSet::from_ids((0..n_terms).map(|_| rng.gen_range(0..VOCAB)));
                Mutation::UpdateDoc {
                    id: ObjectId(id),
                    doc,
                }
            }
        })
        .collect()
}

/// A why-not question over the surviving objects (missing object below
/// the top-k), or `None` when the workload has no candidates.
fn make_question(ds: &Dataset, seed: u64) -> Option<WhyNotQuestion> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let q = SpatialKeywordQuery::new(
        Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
        KeywordSet::from_ids((0..rng.gen_range(2..=4)).map(|_| rng.gen_range(0..VOCAB))),
        5,
        0.5,
    );
    let mut scored: Vec<(ObjectId, f64)> =
        ds.live_objects().map(|o| (o.id, ds.score(o, &q))).collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    let lo = q.k + 2;
    let hi = (q.k + 40).min(scored.len());
    if lo >= hi {
        return None;
    }
    for _ in 0..100 {
        let id = scored[rng.gen_range(lo..hi)].0;
        if ds.rank_of(id, &q) > q.k {
            return Some(WhyNotQuestion::new(q, vec![id], 0.5));
        }
    }
    None
}

/// A WAL pool over a fault backend scripting one torn write at `op`.
/// No retries: recovery should see the torn page fail immediately.
fn faulted_wal_pool(crash_op: u64, seed: u64) -> (Arc<FaultBackend<MemBackend>>, Arc<BufferPool>) {
    let plan = FaultPlan::new(seed).with_scripted(crash_op, FaultKind::TornWrite);
    let fb = Arc::new(FaultBackend::new(MemBackend::new(), plan));
    let pool = Arc::new(BufferPool::new(
        Arc::clone(&fb) as Arc<dyn wnsk_storage::StorageBackend>,
        BufferPoolConfig {
            retry: RetryPolicy::none(),
            ..BufferPoolConfig::default()
        },
    ));
    (fb, pool)
}

fn build_engine(ds: &Dataset) -> WhyNotEngine {
    WhyNotEngine::build_with(ds.clone(), FANOUT, BufferPoolConfig::default()).unwrap()
}

/// Exact comparison, penalties as bit patterns.
fn assert_identical(base: &RefinedQuery, other: &RefinedQuery, label: &str) {
    assert_eq!(base.doc, other.doc, "{label}: refined keyword set diverged");
    assert_eq!(base.k, other.k, "{label}: refined k diverged");
    assert_eq!(base.rank, other.rank, "{label}: rank diverged");
    assert_eq!(
        base.edit_distance, other.edit_distance,
        "{label}: edit distance diverged"
    );
    assert_eq!(
        base.penalty.to_bits(),
        other.penalty.to_bits(),
        "{label}: penalty bits diverged ({} vs {})",
        base.penalty,
        other.penalty
    );
}

/// Ingests the script in small batches until the scripted torn write
/// fires (the "crash"), then drops the engine. Returns the number of
/// mutations handed to `ingest_batch` before stopping.
fn ingest_until_crash(
    engine: &mut WhyNotEngine,
    fb: &FaultBackend<MemBackend>,
    muts: &[Mutation],
    seed: u64,
) -> usize {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C);
    let mut i = 0;
    while i < muts.len() {
        let n = rng.gen_range(1..=3usize).min(muts.len() - i);
        engine.ingest_batch(&muts[i..i + n]).unwrap();
        i += n;
        if fb.fault_stats().torn_writes > 0 {
            break;
        }
    }
    i
}

/// The full scenario for one seed: ingest with a crash at `crash_op`
/// storage ops into the WAL, recover, and cross-check the recovered
/// engine against a never-crashed twin across the whole
/// solver × thread × kernel matrix.
fn crash_recover_and_check(seed: u64, crash_op: u64, n_base: usize, n_ops: usize) {
    let ds = random_dataset(n_base, seed);
    let muts = mutation_script(&ds, n_ops, seed);

    // Phase 1: live engine ingests durably until the torn write "crash".
    let (fb, wal_pool) = faulted_wal_pool(crash_op, seed);
    let mut live = build_engine(&ds);
    live.attach_wal(Arc::clone(&wal_pool)).unwrap();
    let ingested = ingest_until_crash(&mut live, &fb, &muts, seed);
    drop(live);

    // Phase 2: "restart" — drop every cached page, recover from the
    // durable bytes alone.
    wal_pool.clear_cache();
    let mut recovered = build_engine(&ds);
    let report = recovered.attach_wal(Arc::clone(&wal_pool)).unwrap();
    let replayed = report.records_replayed as usize;
    assert!(
        replayed <= ingested,
        "recovery replayed {replayed} records but only {ingested} were ingested"
    );
    if fb.fault_stats().torn_writes > 0 {
        assert!(
            report.stopped_by.is_some() || replayed == ingested,
            "a torn write fired but recovery neither truncated nor replayed everything"
        );
    }

    // Phase 3: the never-crashed twin applies the same surviving prefix.
    let mut twin = build_engine(&ds);
    for m in &muts[..replayed] {
        twin.apply(m).unwrap();
    }

    assert_eq!(recovered.epoch(), twin.epoch(), "epoch diverged");
    assert_eq!(
        recovered.dataset().live_len(),
        twin.dataset().live_len(),
        "live object count diverged"
    );

    // Top-k answers agree bit-for-bit.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x70FF);
    for _ in 0..4 {
        let q = SpatialKeywordQuery::new(
            Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
            KeywordSet::from_ids((0..rng.gen_range(1..=4)).map(|_| rng.gen_range(0..VOCAB))),
            5,
            0.5,
        );
        let a = recovered.top_k(&q).unwrap();
        let b = twin.top_k(&q).unwrap();
        assert_eq!(a.len(), b.len(), "top-k length diverged");
        for ((ia, sa), (ib, sb)) in a.iter().zip(&b) {
            assert_eq!(ia, ib, "top-k ids diverged");
            assert_eq!(sa.to_bits(), sb.to_bits(), "top-k score bits diverged");
        }
    }

    // Why-not answers agree across every solver, thread count, and
    // kernel.
    let Some(question) = make_question(recovered.dataset(), seed) else {
        return;
    };
    let base = recovered.answer_basic(&question).unwrap();
    let twin_base = twin.answer_basic(&question).unwrap();
    assert_identical(&base.refined, &twin_base.refined, "BS");
    for kernel in Kernel::ALL {
        for threads in THREAD_COUNTS {
            let opts = KcrOptions {
                threads,
                kernel,
                ..KcrOptions::default()
            };
            let a = recovered.answer_kcr(&question, opts).unwrap();
            let b = twin.answer_kcr(&question, opts).unwrap();
            assert_identical(
                &a.refined,
                &b.refined,
                &format!("KcRBased[{kernel}] t={threads}"),
            );
            let opts = AdvancedOptions {
                threads,
                kernel,
                ..AdvancedOptions::default()
            };
            let a = recovered.answer_advanced(&question, opts).unwrap();
            let b = twin.answer_advanced(&question, opts).unwrap();
            assert_identical(
                &a.refined,
                &b.refined,
                &format!("AdvancedBS[{kernel}] t={threads}"),
            );
        }
    }
}

/// Crash offsets sweep the WAL write stream (even ops are page writes,
/// odd ops are syncs; torn writes only fire on writes, so an offset that
/// lands on a sync simply never crashes — the script then completes,
/// which is a valid "no crash" run of the same check).
#[test]
fn recovered_engine_is_bit_identical_to_never_crashed_twin() {
    let base = chaos_seed();
    let mut rng = StdRng::seed_from_u64(base);
    for round in 0..3u64 {
        let crash_op = rng.gen_range(0..40) * 2;
        crash_recover_and_check(base.wrapping_add(round), crash_op, 120, 30);
    }
}

/// The degenerate offsets: a crash on the very first WAL write (nothing
/// survives) and one far past the script (no crash at all).
#[test]
fn recovery_handles_empty_and_complete_logs() {
    let seed = chaos_seed() ^ 0xD06;
    crash_recover_and_check(seed, 0, 60, 12);
    crash_recover_and_check(seed, 1_000_000, 60, 12);
}

/// Re-running recovery over an already-recovered (truncated) log is a
/// no-op: same records, same epoch — recovery is idempotent.
#[test]
fn recovery_is_idempotent() {
    let seed = chaos_seed() ^ 0x1de;
    let ds = random_dataset(80, seed);
    let muts = mutation_script(&ds, 20, seed);

    let (fb, wal_pool) = faulted_wal_pool(14, seed);
    let mut live = build_engine(&ds);
    live.attach_wal(Arc::clone(&wal_pool)).unwrap();
    ingest_until_crash(&mut live, &fb, &muts, seed);
    drop(live);

    wal_pool.clear_cache();
    let mut first = build_engine(&ds);
    let r1 = first.attach_wal(Arc::clone(&wal_pool)).unwrap();

    wal_pool.clear_cache();
    let mut second = build_engine(&ds);
    let r2 = second.attach_wal(Arc::clone(&wal_pool)).unwrap();

    assert_eq!(r1.records_replayed, r2.records_replayed);
    assert_eq!(r1.last_lsn, r2.last_lsn);
    assert_eq!(r2.bytes_truncated, 0, "second recovery found more garbage");
    assert_eq!(first.epoch(), second.epoch());
}
