//! Property-based tests for the why-not layer: the penalty model, the
//! candidate enumeration, and end-to-end optimality of the solvers on
//! arbitrary small instances.

use proptest::prelude::*;
use wnsk_core::{
    answer_advanced, answer_basic, answer_kcr, AdvancedOptions, CandidateEnumerator, KcrOptions,
    PenaltyModel, WhyNotContext, WhyNotEngine, WhyNotQuestion,
};
use wnsk_geo::{Point, WorldBounds};
use wnsk_index::{Dataset, ObjectId, SpatialKeywordQuery, SpatialObject};
use wnsk_text::{KeywordSet, TermId};

fn arb_doc() -> impl Strategy<Value = KeywordSet> {
    proptest::collection::vec(0u32..12, 1..5).prop_map(KeywordSet::from_ids)
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64, arb_doc()), 8..40).prop_map(|items| {
        let objects = items
            .into_iter()
            .map(|(x, y, doc)| SpatialObject {
                id: ObjectId(0),
                loc: Point::new(x, y),
                doc,
            })
            .collect();
        Dataset::new(objects, WorldBounds::unit())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eqn. 6 round-trips: any rank within the limit has penalty within
    /// the budget, and the next rank above exceeds it.
    #[test]
    fn rank_limit_is_tight(
        lambda in 0.05..0.95f64,
        k0 in 1usize..50,
        extra in 1usize..100,
        norm in 1usize..12,
        ed in 0usize..12,
        budget in 0.0..1.5f64,
    ) {
        let model = PenaltyModel::new(lambda, k0, k0 + extra, norm.max(ed));
        match model.rank_upper_limit(ed, budget) {
            None => {
                prop_assert!(model.keyword_penalty(ed) > budget);
            }
            Some(usize::MAX) => {}
            Some(limit) => {
                prop_assert!(model.penalty(ed, limit) <= budget + 1e-9);
                prop_assert!(model.penalty(ed, limit + 1) > budget - 1e-9);
            }
        }
    }

    /// The layered enumeration covers the candidate space exactly once.
    #[test]
    fn enumeration_partitions_space(
        n_del in 0usize..4,
        n_ins in 0usize..4,
        weights in proptest::collection::vec(-2.0..2.0f64, 8),
    ) {
        prop_assume!(n_del + n_ins >= 1);
        let doc0 = KeywordSet::from_ids(0..n_del as u32);
        let ops: Vec<(TermId, bool, f64)> = (0..n_del)
            .map(|i| (TermId(i as u32), false, weights[i]))
            .chain((0..n_ins).map(|i| (TermId(100 + i as u32), true, weights[4 + i])))
            .collect();
        let e = CandidateEnumerator::from_parts(doc0, ops);
        let all = e.all(false);
        prop_assert_eq!(all.len() as u64, e.total_candidates());
        let unique: std::collections::HashSet<_> =
            all.iter().map(|c| c.doc.clone()).collect();
        prop_assert_eq!(unique.len(), all.len(), "duplicate candidate docs");
        // The sample in full length enumerates the same benefits, sorted.
        let sample = e.sample_top(all.len());
        prop_assert_eq!(sample.len(), all.len());
        prop_assert!(sample.windows(2).all(|w| w[0].benefit >= w[1].benefit - 1e-12));
    }

    /// End-to-end: the three solvers agree with the brute-force optimum
    /// on arbitrary tiny instances.
    #[test]
    fn solvers_are_optimal(ds in arb_dataset(), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let q = SpatialKeywordQuery::new(
            Point::new(rng.gen(), rng.gen()),
            KeywordSet::from_ids((0..rng.gen_range(1..3)).map(|_| rng.gen_range(0..12u32))),
            2,
            0.5,
        );
        // Find an object that is strictly missing.
        let missing = ds
            .objects()
            .iter()
            .map(|o| o.id)
            .find(|&id| {
                let r = ds.rank_of(id, &q);
                r > q.k && r <= ds.len()
            });
        prop_assume!(missing.is_some());
        let question = WhyNotQuestion::new(q.clone(), vec![missing.unwrap()], 0.5);

        // Brute force optimum.
        let initial_rank = ds.rank_of(missing.unwrap(), &q);
        let ctx = WhyNotContext::new(&ds, &question, initial_rank).unwrap();
        let mut best = ctx.penalty.baseline_penalty();
        for cand in CandidateEnumerator::new(&ctx).all(false) {
            let rank = ds.rank_of(missing.unwrap(), &q.with_doc(cand.doc.clone()));
            best = best.min(ctx.penalty.penalty(cand.edit_distance, rank));
        }

        let engine = WhyNotEngine::build_with(
            ds.clone(),
            4,
            wnsk_storage::BufferPoolConfig::default(),
        )
        .unwrap();
        let bs = answer_basic(engine.dataset(), engine.setr(), &question).unwrap();
        prop_assert!((bs.refined.penalty - best).abs() < 1e-9);
        let adv = answer_advanced(
            engine.dataset(),
            engine.setr(),
            &question,
            AdvancedOptions::default(),
        )
        .unwrap();
        prop_assert!((adv.refined.penalty - best).abs() < 1e-9);
        let kcr = answer_kcr(
            engine.dataset(),
            engine.kcr(),
            &question,
            KcrOptions::default(),
        )
        .unwrap();
        prop_assert!((kcr.refined.penalty - best).abs() < 1e-9,
            "kcr {} vs brute {best}", kcr.refined.penalty);
    }

    /// Penalty is monotone in both rank and edit distance, bounded by the
    /// pieces.
    #[test]
    fn penalty_monotone(
        lambda in 0.0..=1.0f64,
        k0 in 1usize..20,
        extra in 1usize..50,
        norm in 1usize..10,
        ed in 0usize..10,
        rank in 1usize..100,
    ) {
        let model = PenaltyModel::new(lambda, k0, k0 + extra, norm.max(ed.max(1)));
        let p = model.penalty(ed, rank);
        prop_assert!(p >= model.keyword_penalty(ed) - 1e-12);
        prop_assert!(p >= model.rank_penalty(rank) - 1e-12);
        prop_assert!(model.penalty(ed, rank + 1) >= p - 1e-12);
        if ed < model.doc_norm {
            prop_assert!(model.penalty(ed + 1, rank) >= p - 1e-12);
        }
    }
}
