//! Chaos suite: the solvers run over fault-injected storage and a starved
//! query budget must never panic and never return a silently wrong
//! refinement — every `Ok` answer contains all missing objects, every
//! failure is a typed error.
//!
//! The fault matrix is seeded from `WNSK_CHAOS_SEED` (decimal, default
//! `0xC0FFEE`) so CI can pin a reproducible schedule while local runs can
//! explore new ones.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;
use wnsk_core::{
    answer_advanced, answer_basic_with_budget, answer_kcr, AdvancedOptions, AnswerQuality,
    DegradeReason, KcrOptions, QueryBudget, WhyNotAnswer, WhyNotError, WhyNotQuestion,
};
use wnsk_geo::{Point, WorldBounds};
use wnsk_index::{Dataset, KcrTree, ObjectId, SetRTree, SpatialKeywordQuery, SpatialObject};
use wnsk_storage::{
    BufferPool, BufferPoolConfig, FaultBackend, FaultPlan, FileBackend, MemBackend, StorageBackend,
};
use wnsk_text::KeywordSet;

/// Base seed for the fault matrix; override with `WNSK_CHAOS_SEED`.
/// A malformed value is a hard error — silently falling back to the
/// default would make a CI matrix entry quietly re-run the default
/// schedule instead of the one it names.
fn chaos_seed() -> u64 {
    match std::env::var("WNSK_CHAOS_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("WNSK_CHAOS_SEED must be a decimal u64, got {s:?}: {e}")),
        Err(std::env::VarError::NotPresent) => 0xC0FFEE,
        Err(e) => panic!("WNSK_CHAOS_SEED is unreadable: {e}"),
    }
}

fn random_dataset(n: usize, vocab: u32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let objects = (0..n)
        .map(|_| {
            let n_terms = rng.gen_range(1..=5);
            let doc = KeywordSet::from_ids((0..n_terms).map(|_| rng.gen_range(0..vocab)));
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
                doc,
            }
        })
        .collect();
    Dataset::new(objects, WorldBounds::unit())
}

/// A question whose missing objects genuinely sit below the top-k.
fn make_question(ds: &Dataset, vocab: u32, seed: u64) -> Option<WhyNotQuestion> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let q = SpatialKeywordQuery::new(
        Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
        KeywordSet::from_ids((0..rng.gen_range(1..=3)).map(|_| rng.gen_range(0..vocab))),
        5,
        0.5,
    );
    let mut scored: Vec<(ObjectId, f64)> = ds
        .objects()
        .iter()
        .map(|o| (o.id, ds.score(o, &q)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    let lo = q.k + 2;
    let hi = (q.k + 30).min(scored.len());
    for _ in 0..100 {
        let id = scored[rng.gen_range(lo..hi)].0;
        if ds.rank_of(id, &q) > q.k {
            return Some(WhyNotQuestion::new(q, vec![id], 0.5));
        }
    }
    None
}

/// An `Ok` answer must be sound: finite penalty, and the refined query
/// really retrieves every missing object within its refined `k'`.
fn assert_valid_answer(ds: &Dataset, question: &WhyNotQuestion, a: &WhyNotAnswer, tag: &str) {
    assert!(
        a.refined.penalty.is_finite(),
        "{tag}: penalty must be finite, got {}",
        a.refined.penalty
    );
    let q_refined = question.query.with_doc(a.refined.doc.clone());
    for &id in &question.missing {
        let rank = ds.rank_of(id, &q_refined);
        assert!(
            rank <= a.refined.k,
            "{tag}: missing {id:?} ranks {rank} under the refined query, beyond k'={}",
            a.refined.k
        );
    }
}

fn pool_over(backend: Arc<dyn StorageBackend>) -> Arc<BufferPool> {
    Arc::new(BufferPool::new(backend, BufferPoolConfig::default()))
}

/// Re-wraps a build/open failure so the chaos assertions can classify it
/// like any other storage error (`StorageError` holds `io::Error` and is
/// not `Clone`).
fn as_storage_error(e: &wnsk_storage::StorageError) -> WhyNotError {
    WhyNotError::Storage(if e.is_transient() {
        wnsk_storage::StorageError::transient("chaos build", e.to_string())
    } else {
        wnsk_storage::StorageError::corrupt("chaos build", e.to_string())
    })
}

/// Builds both trees through the given (possibly faulty) storage — then
/// re-opens them through a *fresh, cold* pool so persistent corruption is
/// actually read back rather than masked by the build-time cache — and
/// runs all three solvers. Build failures surface as one `Err` per
/// solver slot.
fn run_all_solvers(
    ds: &Dataset,
    question: &WhyNotQuestion,
    setr_backend: Arc<dyn StorageBackend>,
    kcr_backend: Arc<dyn StorageBackend>,
) -> Vec<(&'static str, Result<WhyNotAnswer, WhyNotError>)> {
    let setr = SetRTree::build(pool_over(Arc::clone(&setr_backend)), ds, 8)
        .and_then(|_| SetRTree::open(pool_over(setr_backend)));
    let kcr = KcrTree::build(pool_over(Arc::clone(&kcr_backend)), ds, 8)
        .and_then(|_| KcrTree::open(pool_over(kcr_backend)));
    let mut out = Vec::new();
    match &setr {
        Ok(tree) => {
            out.push((
                "bs",
                answer_basic_with_budget(ds, tree, question, QueryBudget::unlimited()),
            ));
            out.push((
                "advanced",
                answer_advanced(ds, tree, question, AdvancedOptions::default()),
            ));
        }
        Err(e) => {
            out.push(("bs", Err(as_storage_error(e))));
            out.push(("advanced", Err(as_storage_error(e))));
        }
    }
    match &kcr {
        Ok(tree) => out.push(("kcr", answer_kcr(ds, tree, question, KcrOptions::default()))),
        Err(e) => out.push(("kcr", Err(as_storage_error(e)))),
    }
    out
}

/// Transient faults (read errors + bit flips) are healed by the pool's
/// retry loop: every solver still reaches the clean exact answer.
#[test]
fn transient_faults_heal_to_the_exact_answer() {
    let base = chaos_seed();
    for round in 0..4u64 {
        let seed = base.wrapping_add(round);
        let ds = random_dataset(250, 25, seed);
        let Some(question) = make_question(&ds, 25, seed) else {
            continue;
        };

        // Clean reference run.
        let clean = run_all_solvers(
            &ds,
            &question,
            Arc::new(MemBackend::new()),
            Arc::new(MemBackend::new()),
        );

        let plan = FaultPlan::new(seed)
            .with_read_error_prob(0.05)
            .with_read_bitflip_prob(0.05)
            .with_write_error_prob(0.05);
        let setr_fb = Arc::new(FaultBackend::new(MemBackend::new(), plan.clone()));
        let kcr_fb = Arc::new(FaultBackend::new(MemBackend::new(), plan));
        let faulty = run_all_solvers(
            &ds,
            &question,
            Arc::clone(&setr_fb) as Arc<dyn StorageBackend>,
            Arc::clone(&kcr_fb) as Arc<dyn StorageBackend>,
        );

        let injected = setr_fb.fault_stats().total() + kcr_fb.fault_stats().total();
        assert!(injected > 0, "seed {seed}: the fault plan never fired");

        for ((tag, clean_r), (_, faulty_r)) in clean.iter().zip(&faulty) {
            let clean_a = clean_r.as_ref().expect("clean run must succeed");
            let faulty_a = faulty_r
                .as_ref()
                .unwrap_or_else(|e| panic!("seed {seed} {tag}: transient faults must heal: {e}"));
            assert_valid_answer(&ds, &question, faulty_a, &format!("seed {seed} {tag}"));
            assert!(
                (clean_a.refined.penalty - faulty_a.refined.penalty).abs() < 1e-12,
                "seed {seed} {tag}: faulty run changed the refinement \
                 ({} vs {})",
                clean_a.refined.penalty,
                faulty_a.refined.penalty
            );
        }
    }
}

/// Persistent corruption (torn writes) either never lands on the query
/// path — the answer is still sound — or surfaces as a typed storage
/// error. Never a panic, never a silently wrong refinement. Runs over
/// both the in-memory and the on-disk backend.
#[test]
fn persistent_corruption_is_detected_or_harmless() {
    let base = chaos_seed();
    let dir = std::env::temp_dir().join(format!("wnsk-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut injected_total = 0u64;
    for round in 0..4u64 {
        let seed = base.wrapping_add(0x100 + round);
        let ds = random_dataset(250, 25, seed);
        let Some(question) = make_question(&ds, 25, seed) else {
            continue;
        };
        let plan = FaultPlan::new(seed)
            .with_torn_write_prob(0.02)
            .with_read_bitflip_prob(0.02)
            .with_read_error_prob(0.02);

        // In-memory and file-backed storage behind the same fault plan.
        let mem_setr = Arc::new(FaultBackend::new(MemBackend::new(), plan.clone()));
        let mem_kcr = Arc::new(FaultBackend::new(MemBackend::new(), plan.clone()));
        let file_setr = Arc::new(FaultBackend::new(
            FileBackend::create(&dir.join(format!("setr-{round}.db"))).unwrap(),
            plan.clone(),
        ));
        let file_kcr = Arc::new(FaultBackend::new(
            FileBackend::create(&dir.join(format!("kcr-{round}.db"))).unwrap(),
            plan,
        ));

        let results = run_all_solvers(
            &ds,
            &question,
            Arc::clone(&mem_setr) as Arc<dyn StorageBackend>,
            Arc::clone(&mem_kcr) as Arc<dyn StorageBackend>,
        )
        .into_iter()
        .chain(run_all_solvers(
            &ds,
            &question,
            Arc::clone(&file_setr) as Arc<dyn StorageBackend>,
            Arc::clone(&file_kcr) as Arc<dyn StorageBackend>,
        ));

        for (tag, r) in results {
            match r {
                Ok(a) => assert_valid_answer(&ds, &question, &a, &format!("seed {seed} {tag}")),
                // A typed error is the correct way to fail; reaching this
                // arm at all proves no panic escaped.
                Err(WhyNotError::Storage(_)) => {}
                Err(e) => panic!("seed {seed} {tag}: unexpected error class: {e}"),
            }
        }
        injected_total += mem_setr.fault_stats().total()
            + mem_kcr.fault_stats().total()
            + file_setr.fault_stats().total()
            + file_kcr.fault_stats().total();
    }
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        injected_total > 0,
        "the chaos matrix never injected a fault"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary fault schedules over arbitrary small instances: solvers
    /// never panic, and answers are sound or errors typed.
    #[test]
    fn chaos_never_panics_or_lies(
        seed in 0u64..1_000_000,
        read_err in 0.0f64..0.1,
        bitflip in 0.0f64..0.1,
        torn in 0.0f64..0.05,
    ) {
        let ds = random_dataset(120, 15, seed);
        if let Some(question) = make_question(&ds, 15, seed) {
            let plan = FaultPlan::new(seed)
                .with_read_error_prob(read_err)
                .with_read_bitflip_prob(bitflip)
                .with_torn_write_prob(torn);
            let setr = Arc::new(FaultBackend::new(MemBackend::new(), plan.clone()));
            let kcr = Arc::new(FaultBackend::new(MemBackend::new(), plan));
            for (tag, r) in run_all_solvers(
                &ds,
                &question,
                setr as Arc<dyn StorageBackend>,
                kcr as Arc<dyn StorageBackend>,
            ) {
                match r {
                    Ok(a) => assert_valid_answer(&ds, &question, &a, tag),
                    Err(WhyNotError::Storage(_)) => {}
                    Err(e) => panic!("{tag}: unexpected error class: {e}"),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-solver query-budget behaviour.
// ---------------------------------------------------------------------

struct BudgetFixture {
    ds: Dataset,
    question: WhyNotQuestion,
    setr: SetRTree,
    kcr: KcrTree,
}

fn budget_fixture(seed: u64) -> BudgetFixture {
    for s in seed.. {
        let ds = random_dataset(300, 25, s);
        if let Some(question) = make_question(&ds, 25, s) {
            let setr = SetRTree::build(pool_over(Arc::new(MemBackend::new())), &ds, 8).unwrap();
            let kcr = KcrTree::build(pool_over(Arc::new(MemBackend::new())), &ds, 8).unwrap();
            return BudgetFixture {
                ds,
                question,
                setr,
                kcr,
            };
        }
    }
    unreachable!("some seed always yields a valid question")
}

/// Runs one solver under `budget` against the fixture, with a cold cache
/// so page-read limits have physical reads to count.
fn solve(f: &BudgetFixture, algo: &str, budget: QueryBudget) -> Result<WhyNotAnswer, WhyNotError> {
    f.setr.pool().clear_cache();
    f.kcr.pool().clear_cache();
    match algo {
        "bs" => answer_basic_with_budget(&f.ds, &f.setr, &f.question, budget),
        "advanced" => answer_advanced(
            &f.ds,
            &f.setr,
            &f.question,
            AdvancedOptions {
                budget,
                ..AdvancedOptions::default()
            },
        ),
        "kcr" => answer_kcr(
            &f.ds,
            &f.kcr,
            &f.question,
            KcrOptions {
                budget,
                ..KcrOptions::default()
            },
        ),
        _ => unreachable!(),
    }
}

/// A zero deadline (with the default grace window) degrades every solver
/// to an approximate — but still sound — answer.
#[test]
fn zero_deadline_degrades_every_solver() {
    let f = budget_fixture(7);
    for algo in ["bs", "advanced", "kcr"] {
        let budget = QueryBudget::unlimited().with_deadline(Duration::ZERO);
        let a = solve(&f, algo, budget).unwrap_or_else(|e| panic!("{algo}: {e}"));
        assert_eq!(
            a.quality,
            AnswerQuality::Degraded {
                reason: DegradeReason::DeadlineExceeded
            },
            "{algo}"
        );
        assert_eq!(a.stats.degraded, 1, "{algo}");
        assert_valid_answer(&f.ds, &f.question, &a, algo);
    }
}

/// A one-page read budget degrades every solver with the page-read
/// reason once the initial scan has touched storage.
#[test]
fn page_read_limit_degrades_every_solver() {
    let f = budget_fixture(11);
    for algo in ["bs", "advanced", "kcr"] {
        let budget = QueryBudget::unlimited().with_max_page_reads(1);
        let a = solve(&f, algo, budget).unwrap_or_else(|e| panic!("{algo}: {e}"));
        assert_eq!(
            a.quality,
            AnswerQuality::Degraded {
                reason: DegradeReason::PageReadLimit
            },
            "{algo}"
        );
        assert_valid_answer(&f.ds, &f.question, &a, algo);
    }
}

/// With a zero deadline *and* a zero grace window even the fallback
/// cannot run: the last rung is the typed `BudgetExhausted` error.
#[test]
fn zero_grace_is_a_typed_budget_error() {
    let f = budget_fixture(13);
    for algo in ["bs", "advanced", "kcr"] {
        let budget = QueryBudget::unlimited()
            .with_deadline(Duration::ZERO)
            .with_fallback_grace(Duration::ZERO);
        match solve(&f, algo, budget) {
            Err(WhyNotError::BudgetExhausted { reason }) => {
                assert_eq!(reason, DegradeReason::DeadlineExceeded, "{algo}")
            }
            other => panic!("{algo}: expected BudgetExhausted, got {other:?}"),
        }
    }
}

/// The acceptance scenario: a 1 ms deadline over slow storage on a
/// paper-scale workload still yields an answer — degraded, finite
/// penalty, and the refined query contains every missing object.
#[test]
fn millisecond_deadline_on_slow_storage_degrades_gracefully() {
    let seed = chaos_seed();
    let ds = random_dataset(2000, 40, seed);
    let question = make_question(&ds, 40, seed).expect("paper-scale instance has a question");
    // 20 µs per page read: a handful of reads blow the 1 ms deadline, as
    // a cold spinning disk would.
    let plan = FaultPlan::new(seed).with_latency(Duration::from_micros(20), Duration::ZERO);
    let backend = Arc::new(FaultBackend::new(MemBackend::new(), plan));
    let setr = SetRTree::build(pool_over(backend as Arc<dyn StorageBackend>), &ds, 16).unwrap();
    setr.pool().clear_cache();

    let budget = QueryBudget::unlimited().with_deadline(Duration::from_millis(1));
    let a = answer_basic_with_budget(&ds, &setr, &question, budget).unwrap();
    assert!(
        a.quality.is_degraded(),
        "expected degradation, got {:?}",
        a.quality
    );
    assert_valid_answer(&ds, &question, &a, "1ms-deadline");
}
