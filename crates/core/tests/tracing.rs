//! Tracing is observation only: answers must stay bit-identical with
//! tracing on or off at every thread count, and the span tree must
//! reconcile exactly with the counters recorded by the same query —
//! the `prune.maxdom` / `prune.mindom` events and counters share one
//! call site, so any drift here is a real bug, not flakiness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use wnsk_core::{answer_advanced, answer_kcr, AdvancedOptions, KcrOptions, WhyNotQuestion};
use wnsk_geo::{Point, WorldBounds};
use wnsk_index::{Dataset, KcrTree, ObjectId, SetRTree, SpatialKeywordQuery, SpatialObject};
use wnsk_obs::{names, Registry, Tracer};
use wnsk_storage::{BufferPool, BufferPoolConfig, MemBackend};
use wnsk_text::KeywordSet;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn random_dataset(n: usize, vocab: u32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let objects = (0..n)
        .map(|_| {
            let n_terms = rng.gen_range(1..=5);
            let doc = KeywordSet::from_ids((0..n_terms).map(|_| rng.gen_range(0..vocab)));
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
                doc,
            }
        })
        .collect();
    Dataset::new(objects, WorldBounds::unit())
}

fn make_question(ds: &Dataset, vocab: u32, seed: u64) -> Option<WhyNotQuestion> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let q = SpatialKeywordQuery::new(
        Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
        KeywordSet::from_ids((0..rng.gen_range(2..=4)).map(|_| rng.gen_range(0..vocab))),
        5,
        0.5,
    );
    let mut scored: Vec<(ObjectId, f64)> = ds
        .objects()
        .iter()
        .map(|o| (o.id, ds.score(o, &q)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    let lo = q.k + 2;
    let hi = (q.k + 40).min(scored.len());
    for _ in 0..100 {
        let id = scored[rng.gen_range(lo..hi)].0;
        if ds.rank_of(id, &q) > q.k {
            return Some(WhyNotQuestion::new(q, vec![id], 0.5));
        }
    }
    None
}

fn pool() -> Arc<BufferPool> {
    Arc::new(BufferPool::new(
        Arc::new(MemBackend::new()),
        BufferPoolConfig::default(),
    ))
}

/// Tracing on/off must not move a single bit of the answer, at any
/// thread count (the tracer feeds nothing back into solver decisions).
#[test]
fn tracing_leaves_answers_bit_identical() {
    let vocab = 40;
    let mut covered = 0;
    for seed in 0..4u64 {
        let ds = random_dataset(400, vocab, 1000 + seed);
        let Some(question) = make_question(&ds, vocab, 2000 + seed) else {
            continue;
        };
        covered += 1;

        let plain = KcrTree::build(pool(), &ds, 8).unwrap();
        let mut traced = KcrTree::build(pool(), &ds, 8).unwrap();
        let tracer = Tracer::new();
        traced.set_tracer(tracer.clone());

        for threads in THREAD_COUNTS {
            let opts = KcrOptions {
                threads,
                batch_size: 16,
                ..KcrOptions::default()
            };
            let base = answer_kcr(&ds, &plain, &question, opts).unwrap();
            let ans = answer_kcr(&ds, &traced, &question, opts).unwrap();
            let report = tracer.drain();
            assert!(
                !report.is_empty(),
                "t={threads}: the traced run must record spans"
            );
            assert_eq!(
                base.refined.doc, ans.refined.doc,
                "t={threads}: doc diverged"
            );
            assert_eq!(base.refined.k, ans.refined.k, "t={threads}: k diverged");
            assert_eq!(
                base.refined.rank, ans.refined.rank,
                "t={threads}: rank diverged"
            );
            assert_eq!(
                base.refined.penalty.to_bits(),
                ans.refined.penalty.to_bits(),
                "t={threads}: penalty bits diverged"
            );
        }
    }
    assert!(covered >= 2, "only {covered} seeds produced a workload");
}

/// The acceptance check: one traced KcRBased query's span tree carries
/// exactly as many `prune.maxdom` / `prune.mindom` events as the
/// registry counters moved, and the tree is rooted in the query span.
#[test]
fn kcr_prune_events_reconcile_with_counters() {
    let vocab = 40;
    let ds = random_dataset(400, vocab, 1003);
    let question = make_question(&ds, vocab, 2003).expect("seed 1003/2003 produces a workload");

    let registry = Registry::new();
    let tracer = Tracer::new();
    tracer.set_enabled(false); // keep the build out of the trace
    let mut tree = KcrTree::build(pool(), &ds, 8).unwrap();
    tree.register_metrics(&registry, "kcr.");
    tree.set_tracer(tracer.clone());

    for threads in [1, 4] {
        tracer.set_enabled(true);
        let before = registry.snapshot();
        let opts = KcrOptions {
            threads,
            batch_size: 16,
            ..KcrOptions::default()
        };
        let ans = answer_kcr(&ds, &tree, &question, opts).unwrap();
        tracer.set_enabled(false);
        let report = tracer.drain();
        let delta = registry.snapshot().since(&before);

        assert_eq!(
            report.count_events(names::PRUNE_MAXDOM),
            delta.counter("kcr.prune.maxdom"),
            "t={threads}: maxdom events vs counter"
        );
        assert_eq!(
            report.count_events(names::PRUNE_MINDOM),
            delta.counter("kcr.prune.mindom"),
            "t={threads}: mindom events vs counter"
        );
        assert!(
            report.count_events(names::PRUNE_MAXDOM) + report.count_events(names::PRUNE_MINDOM) > 0,
            "t={threads}: the workload must actually prune"
        );
        assert_eq!(
            report.count_events(names::NODE_VISITS),
            delta.counter("kcr.node_visits"),
            "t={threads}: node-visit events vs counter"
        );

        let tree_text = report.render_tree();
        assert!(
            tree_text.contains("kcr.query"),
            "missing query span:\n{tree_text}"
        );
        assert!(
            tree_text.contains("phase.initial_rank"),
            "missing phase span:\n{tree_text}"
        );
        assert!(
            !ans.stats.task_latency.is_empty(),
            "t={threads}: task latencies must be recorded"
        );
    }
}

/// Same reconciliation for the SetR-tree solver: node visits counted by
/// the tree equal the node-visit events in the trace.
#[test]
fn advanced_node_visits_reconcile_with_counters() {
    let vocab = 40;
    let ds = random_dataset(300, vocab, 3001);
    let question = make_question(&ds, vocab, 4001).expect("seed 3001/4001 produces a workload");

    let registry = Registry::new();
    let tracer = Tracer::new();
    tracer.set_enabled(false);
    let mut tree = SetRTree::build(pool(), &ds, 8).unwrap();
    tree.register_metrics(&registry, "setr.");
    tree.set_tracer(tracer.clone());

    tracer.set_enabled(true);
    let before = registry.snapshot();
    let ans = answer_advanced(&ds, &tree, &question, AdvancedOptions::default()).unwrap();
    tracer.set_enabled(false);
    let report = tracer.drain();
    let delta = registry.snapshot().since(&before);

    assert_eq!(
        report.count_events(names::NODE_VISITS),
        delta.counter("setr.node_visits"),
        "node-visit events vs counter"
    );
    assert!(report.render_tree().contains("bs.query"));
    assert!(ans.stats.queries_run > 0);
}
