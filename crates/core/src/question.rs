//! Problem types: the why-not question, its precomputed context, and the
//! refined-query answers.

use crate::error::{Result, WhyNotError};
use crate::penalty::PenaltyModel;
use std::time::Duration;
use wnsk_geo::Point;
use wnsk_index::{st_score, Dataset, ObjectId, SpatialKeywordQuery};
use wnsk_text::{KeywordSet, ProjectedSet, SimUniverse};

/// A why-not question (Definition 2): the initial query, the objects the
/// user expected to see, and the penalty preference λ.
#[derive(Clone, Debug)]
pub struct WhyNotQuestion {
    /// The initial spatial keyword top-k query `q = (loc, doc₀, k₀, α)`.
    pub query: SpatialKeywordQuery,
    /// The missing objects `M` (non-empty, distinct, all ranked below the
    /// initial top-k).
    pub missing: Vec<ObjectId>,
    /// Preference between modifying `k` and modifying the keywords
    /// (Eqn. 4).
    pub lambda: f64,
}

impl WhyNotQuestion {
    /// Creates a question; full validation happens against the dataset in
    /// [`WhyNotContext::new`].
    pub fn new(query: SpatialKeywordQuery, missing: Vec<ObjectId>, lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
        WhyNotQuestion {
            query,
            missing,
            lambda,
        }
    }

    /// Structural validation against the dataset: the missing set is
    /// non-empty, has no duplicates and every id exists.
    pub fn validate(&self, dataset: &Dataset) -> Result<()> {
        if self.missing.is_empty() {
            return Err(WhyNotError::EmptyMissingSet);
        }
        let mut seen = std::collections::HashSet::new();
        for &id in &self.missing {
            if !dataset.is_live(id) {
                return Err(WhyNotError::UnknownObject(id));
            }
            if !seen.insert(id) {
                return Err(WhyNotError::DuplicateMissing(id));
            }
        }
        Ok(())
    }
}

/// Per-missing-object precomputation shared by every algorithm.
#[derive(Clone, Debug)]
pub struct MissingObjectInfo {
    pub id: ObjectId,
    pub loc: Point,
    pub doc: KeywordSet,
    /// Normalised spatial distance to the query — fixed across refined
    /// queries, since refinement never moves the query location.
    pub sdist: f64,
}

/// Per-question bitset-kernel state, built once in
/// [`WhyNotContext::new`] and shared by every candidate the solvers
/// evaluate: the dense slot renumbering of the adaption universe.
///
/// `None` on the context when the universe spills past
/// [`wnsk_text::BLOCK_BITS`] — impossible for enumerated questions
/// (the enumerator caps the universe below 64 terms) but kept as a
/// graceful scalar fallback rather than a panic.
#[derive(Clone, Debug)]
pub struct QuestionKernel {
    uni: SimUniverse,
}

impl QuestionKernel {
    /// The slot mapping over `doc₀ ∪ M.doc`.
    #[inline]
    pub fn universe(&self) -> &SimUniverse {
        &self.uni
    }

    /// Projects a keyword set onto the question universe.
    #[inline]
    pub fn project(&self, set: &KeywordSet) -> ProjectedSet {
        self.uni.project(set)
    }
}

/// Everything the algorithms need about one why-not question, computed
/// once: per-missing info, the candidate keyword universe, and the
/// penalty model (which requires the initial rank `R(M, q)`).
#[derive(Clone, Debug)]
pub struct WhyNotContext<'a> {
    pub dataset: &'a Dataset,
    pub query: SpatialKeywordQuery,
    pub lambda: f64,
    pub missing: Vec<MissingObjectInfo>,
    /// `M.doc = ∪ m_i.doc`.
    pub missing_doc: KeywordSet,
    /// `doc₀ ∪ M.doc`, the candidate universe and Δdoc normaliser.
    pub universe: KeywordSet,
    /// Bitset-kernel state over `universe` (`None` when it spills past
    /// [`wnsk_text::BLOCK_BITS`]; solvers then stay on the scalar path).
    pub kernel: Option<QuestionKernel>,
    /// `R(M, q) = max_i R(m_i, q)` under the initial query.
    pub initial_rank: usize,
    pub penalty: PenaltyModel,
}

impl<'a> WhyNotContext<'a> {
    /// Builds the context. `initial_rank` is `R(M, q)`, computed by the
    /// caller with an index scan (Algorithm 1/4, line 1).
    ///
    /// Fails with [`WhyNotError::NotMissing`] when the "missing" objects
    /// already fit in the initial top-k.
    pub fn new(
        dataset: &'a Dataset,
        question: &WhyNotQuestion,
        initial_rank: usize,
    ) -> Result<Self> {
        question.validate(dataset)?;
        if initial_rank <= question.query.k {
            // Identify an offender for the error message (error path only,
            // so the brute-force rank is acceptable).
            let offender = question
                .missing
                .iter()
                .map(|&id| (id, dataset.rank_of(id, &question.query)))
                .min_by_key(|&(_, r)| r)
                .expect("missing set validated non-empty");
            return Err(WhyNotError::NotMissing {
                object: offender.0,
                rank: offender.1,
            });
        }
        let missing: Vec<MissingObjectInfo> = question
            .missing
            .iter()
            .map(|&id| {
                let o = dataset.object(id);
                MissingObjectInfo {
                    id,
                    loc: o.loc,
                    doc: o.doc.clone(),
                    sdist: dataset.world().normalized_dist(&o.loc, &question.query.loc),
                }
            })
            .collect();
        let missing_doc = missing
            .iter()
            .fold(KeywordSet::empty(), |acc, m| acc.union(&m.doc));
        let universe = question.query.doc.union(&missing_doc);
        let penalty = PenaltyModel::new(
            question.lambda,
            question.query.k,
            initial_rank,
            universe.len(),
        );
        let kernel = SimUniverse::new(&universe).map(|uni| QuestionKernel { uni });
        Ok(WhyNotContext {
            dataset,
            query: question.query.clone(),
            lambda: question.lambda,
            missing,
            missing_doc,
            universe,
            kernel,
            initial_rank,
            penalty,
        })
    }

    /// The exact scores `ST(m_i, q_S)` of every missing object under a
    /// candidate keyword set (location and α are unchanged by refinement).
    pub fn missing_scores(&self, s: &KeywordSet) -> Vec<f64> {
        self.missing
            .iter()
            .map(|m| {
                st_score(
                    self.query.alpha,
                    m.sdist,
                    self.query.sim.similarity(&m.doc, s),
                )
            })
            .collect()
    }

    /// The targets for a rank-of-set scan under candidate `s`:
    /// `(id, score)` pairs.
    pub fn missing_targets(&self, s: &KeywordSet) -> Vec<(ObjectId, f64)> {
        self.missing
            .iter()
            .zip(self.missing_scores(s))
            .map(|(m, score)| (m.id, score))
            .collect()
    }

    /// The *basic* refined query: keep `doc₀`, enlarge `k` to `R(M, q)`.
    /// Its penalty is exactly λ; it initialises every algorithm's best.
    pub fn baseline(&self) -> RefinedQuery {
        RefinedQuery {
            doc: self.query.doc.clone(),
            k: self.initial_rank,
            rank: self.initial_rank,
            edit_distance: 0,
            penalty: self.penalty.baseline_penalty(),
        }
    }

    /// Lemma 1's choice of `k'` for a refined keyword set under which the
    /// missing set ranks `rank`: `max(k₀, rank)`.
    pub fn refined_k(&self, rank: usize) -> usize {
        rank.max(self.query.k)
    }
}

/// A refined query answering the why-not question.
#[derive(Clone, Debug, PartialEq)]
pub struct RefinedQuery {
    /// The adapted keyword set `doc'`.
    pub doc: KeywordSet,
    /// The refined result size `k'` (Lemma 1).
    pub k: usize,
    /// `R(M, q')`: where the missing set ranks under the refined query.
    pub rank: usize,
    /// Insert/delete edit distance from `doc₀`.
    pub edit_distance: usize,
    /// Penalty per Eqn. 4.
    pub penalty: f64,
}

/// Execution statistics reported next to every answer — the paper's two
/// metrics (time, page I/O) plus algorithm-internal counters used by the
/// ablation experiments.
#[derive(Clone, Debug, Default)]
pub struct AlgoStats {
    /// Wall-clock time.
    pub wall: Duration,
    /// Physical page reads through the buffer pool.
    pub io: u64,
    /// Candidate keyword sets generated.
    pub candidates_total: u64,
    /// Candidates discarded by the dominator-cache filter before running
    /// a query (Opt3).
    pub pruned_by_filter: u64,
    /// Candidates never examined thanks to ordered-enumeration early
    /// termination (Opt2) or bound-and-prune pruning.
    pub pruned_by_bound: u64,
    /// Spatial keyword queries actually executed (BS/AdvancedBS).
    pub queries_run: u64,
    /// KcR-tree nodes expanded by the bound-and-prune traversal.
    pub nodes_expanded: u64,
    /// 1 when the query exhausted its [`QueryBudget`](crate::QueryBudget)
    /// and degraded to the approximate fallback.
    pub degraded: u64,
    /// Tasks executed off a peer's deque by the work-stealing pool.
    pub tasks_stolen: u64,
    /// Times a worker lowered the shared best-penalty bound.
    pub bound_refreshes: u64,
    /// Prunes performed against the shared bound (Opt1 keyword-penalty
    /// prunes, Opt3 filter prunes, early-stop aborts, Theorem 3 prunes).
    pub prune_hits: u64,
    /// Per-worker executor counters, in worker-index order (length 1 for
    /// sequential runs; empty when the solver never reached the
    /// candidate-processing phase).
    pub workers: Vec<wnsk_exec::WorkerSnapshot>,
    /// Wall time of the initial-rank phase (finding `R(M, q₀)`).
    pub phase_initial_rank: Duration,
    /// Wall time spent enumerating candidate keyword sets.
    pub phase_enumeration: Duration,
    /// Wall time verifying candidates against the index (rank queries
    /// for BS/AdvancedBS, the bound-and-prune traversal for KcRBased).
    pub phase_verification: Duration,
    /// Distribution of per-task executor latencies (empty when the
    /// solver never timed tasks).
    pub task_latency: wnsk_obs::HistSnapshot,
    /// The initial rank `R(M, q₀)` the solver worked from (KcRBased
    /// only; 0 when the phase never completed). The serving layer uses
    /// this to seed its rank cache so repeated why-not questions can
    /// skip the initial-rank scan via `KcrOptions::initial_rank_hint`.
    pub initial_rank: u64,
}

impl AlgoStats {
    /// The per-phase wall times in execution order, named with the
    /// labels used by [`wnsk_obs::QueryReport`] phases.
    pub fn phases(&self) -> [(&'static str, Duration); 3] {
        [
            ("initial_rank", self.phase_initial_rank),
            ("enumeration", self.phase_enumeration),
            ("verification", self.phase_verification),
        ]
    }

    /// Mirrors the counters and phase timers into a shared metrics
    /// `registry` under the canonical `core.*` names, so a registry
    /// delta taken around an `answer_*` call contains solver-level
    /// metrics alongside buffer-pool and tree-traversal counters.
    pub fn record_into(&self, registry: &wnsk_obs::Registry) {
        use wnsk_obs::names;
        for (name, value) in [
            (names::CORE_CANDIDATES, self.candidates_total),
            (names::CORE_PRUNED_FILTER, self.pruned_by_filter),
            (names::CORE_PRUNED_BOUND, self.pruned_by_bound),
            (names::CORE_QUERIES_RUN, self.queries_run),
            (names::CORE_NODES_EXPANDED, self.nodes_expanded),
            (names::CORE_DEGRADED, self.degraded),
            (names::EXEC_TASKS_STOLEN, self.tasks_stolen),
            (names::EXEC_BOUND_REFRESHES, self.bound_refreshes),
            (names::EXEC_PRUNE_HITS, self.prune_hits),
        ] {
            registry.counter(name).add(value);
        }
        for (name, elapsed) in [
            (names::PHASE_INITIAL_RANK, self.phase_initial_rank),
            (names::PHASE_ENUMERATION, self.phase_enumeration),
            (names::PHASE_VERIFICATION, self.phase_verification),
        ] {
            if elapsed > Duration::ZERO {
                registry.timer(name).record(elapsed);
            }
        }
        // Histograms: per-phase wall times accumulate one sample per
        // query (so p99 over a workload is meaningful), task latencies
        // merge the solver's whole distribution.
        for (name, elapsed) in [
            (names::PHASE_NS_INITIAL_RANK, self.phase_initial_rank),
            (names::PHASE_NS_ENUMERATION, self.phase_enumeration),
            (names::PHASE_NS_VERIFICATION, self.phase_verification),
        ] {
            if elapsed > Duration::ZERO {
                registry.hist(name).record_duration(elapsed);
            }
        }
        if !self.task_latency.is_empty() {
            registry
                .hist(names::EXEC_TASK_NS)
                .merge_snapshot(&self.task_latency);
        }
    }
}

/// The result of a why-not algorithm: the best refined query plus stats
/// and which rung of the degradation ladder produced it.
#[derive(Clone, Debug)]
pub struct WhyNotAnswer {
    pub refined: RefinedQuery,
    pub stats: AlgoStats,
    pub quality: crate::AnswerQuality,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnsk_geo::{Point, WorldBounds};
    use wnsk_index::SpatialObject;

    fn tiny_dataset() -> Dataset {
        let objects = (0..4)
            .map(|i| SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.1 * (i + 1) as f64, 0.1),
                doc: KeywordSet::from_ids([i as u32, 10]),
            })
            .collect();
        Dataset::new(objects, WorldBounds::unit())
    }

    fn query(k: usize) -> SpatialKeywordQuery {
        SpatialKeywordQuery::new(Point::new(0.0, 0.0), KeywordSet::from_ids([10]), k, 0.5)
    }

    #[test]
    fn validate_rejects_bad_questions() {
        let ds = tiny_dataset();
        let empty = WhyNotQuestion::new(query(1), vec![], 0.5);
        assert!(matches!(
            empty.validate(&ds),
            Err(WhyNotError::EmptyMissingSet)
        ));
        let unknown = WhyNotQuestion::new(query(1), vec![ObjectId(99)], 0.5);
        assert!(matches!(
            unknown.validate(&ds),
            Err(WhyNotError::UnknownObject(_))
        ));
        let dup = WhyNotQuestion::new(query(1), vec![ObjectId(1), ObjectId(1)], 0.5);
        assert!(matches!(
            dup.validate(&ds),
            Err(WhyNotError::DuplicateMissing(_))
        ));
    }

    #[test]
    fn context_rejects_non_missing() {
        let ds = tiny_dataset();
        let q = WhyNotQuestion::new(query(4), vec![ObjectId(0)], 0.5);
        // rank passed in (≤ k) triggers the NotMissing error.
        assert!(matches!(
            WhyNotContext::new(&ds, &q, 2),
            Err(WhyNotError::NotMissing { .. })
        ));
    }

    #[test]
    fn context_precomputes_universe_and_scores() {
        let ds = tiny_dataset();
        let q = WhyNotQuestion::new(query(1), vec![ObjectId(3)], 0.5);
        let ctx = WhyNotContext::new(&ds, &q, 4).unwrap();
        // universe = {10} ∪ {3, 10} = {3, 10}.
        assert_eq!(ctx.universe, KeywordSet::from_ids([3, 10]));
        assert_eq!(ctx.missing_doc, KeywordSet::from_ids([3, 10]));
        let scores = ctx.missing_scores(&KeywordSet::from_ids([3, 10]));
        assert_eq!(scores.len(), 1);
        let expected = st_score(
            0.5,
            ds.world()
                .normalized_dist(&ds.object(ObjectId(3)).loc, &Point::new(0.0, 0.0)),
            1.0,
        );
        assert!((scores[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn baseline_matches_lambda() {
        let ds = tiny_dataset();
        let q = WhyNotQuestion::new(query(1), vec![ObjectId(3)], 0.3);
        let ctx = WhyNotContext::new(&ds, &q, 4).unwrap();
        let base = ctx.baseline();
        assert_eq!(base.k, 4);
        assert_eq!(base.edit_distance, 0);
        assert!((base.penalty - 0.3).abs() < 1e-12);
    }

    #[test]
    fn refined_k_follows_lemma1() {
        let ds = tiny_dataset();
        let q = WhyNotQuestion::new(query(2), vec![ObjectId(3)], 0.5);
        let ctx = WhyNotContext::new(&ds, &q, 4).unwrap();
        assert_eq!(ctx.refined_k(1), 2, "rank within top-k keeps k₀");
        assert_eq!(ctx.refined_k(3), 3, "rank beyond k₀ grows k to the rank");
    }

    #[test]
    fn multi_missing_universe_unions_docs() {
        let ds = tiny_dataset();
        let q = WhyNotQuestion::new(query(1), vec![ObjectId(2), ObjectId(3)], 0.5);
        let ctx = WhyNotContext::new(&ds, &q, 4).unwrap();
        assert_eq!(ctx.missing_doc, KeywordSet::from_ids([2, 3, 10]));
        assert_eq!(ctx.universe.len(), 3);
        assert_eq!(ctx.missing_targets(&ctx.universe).len(), 2);
    }
}
