//! The penalty model of Eqn. 4 and the early-stop rank bound of Eqn. 6.

/// The penalty model for one why-not question:
///
/// ```text
/// Penalty(q, q') = λ·Δk/(R(M,q) − k₀) + (1−λ)·Δdoc/|doc₀ ∪ M.doc|
/// ```
///
/// with `Δk = max(0, k' − k₀)` and `k' = max(k₀, R(M, q'))` (Lemma 1), and
/// `Δdoc` the insert/delete edit distance between `doc₀` and `doc'`.
///
/// # Examples
///
/// The paper's Table I setting (`λ = 0.5`, `k₀ = 1`, `R(m,q) = 3`,
/// `|doc₀ ∪ m.doc| = 3`):
///
/// ```
/// use wnsk_core::PenaltyModel;
///
/// let model = PenaltyModel::new(0.5, 1, 3, 3);
/// // Keeping the keywords and enlarging k to 3 costs exactly λ.
/// assert_eq!(model.baseline_penalty(), 0.5);
/// // One keyword edit that lifts the missing object to rank 2:
/// assert!((model.penalty(1, 2) - 5.0 / 12.0).abs() < 1e-12);
/// // Eqn. 6: with one edit and budget 0.5, the rank may reach…
/// assert_eq!(model.rank_upper_limit(1, 0.5), Some(2));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct PenaltyModel {
    /// User preference between modifying `k` (λ→1 penalises it fully) and
    /// modifying the keywords.
    pub lambda: f64,
    /// Result size of the initial query.
    pub k0: usize,
    /// Rank of the missing set under the initial query,
    /// `R(M,q) = max_i R(m_i, q)`. Strictly greater than `k0`.
    pub initial_rank: usize,
    /// `|doc₀ ∪ M.doc|`, the Δdoc normaliser.
    pub doc_norm: usize,
}

impl PenaltyModel {
    /// Creates a model, validating its invariants.
    pub fn new(lambda: f64, k0: usize, initial_rank: usize, doc_norm: usize) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
        assert!(
            initial_rank > k0,
            "missing objects must rank below the top-k ({initial_rank} ≤ {k0})"
        );
        assert!(doc_norm >= 1, "doc₀ ∪ M.doc cannot be empty");
        PenaltyModel {
            lambda,
            k0,
            initial_rank,
            doc_norm,
        }
    }

    /// The `Δk` normaliser `R(M,q) − k₀`.
    #[inline]
    pub fn rank_norm(&self) -> usize {
        self.initial_rank - self.k0
    }

    /// The keyword part of the penalty: `(1−λ)·Δdoc/|doc₀ ∪ M.doc|`.
    #[inline]
    pub fn keyword_penalty(&self, edit_distance: usize) -> f64 {
        (1.0 - self.lambda) * edit_distance as f64 / self.doc_norm as f64
    }

    /// The rank part of the penalty: `λ·max(0, rank − k₀)/(R(M,q) − k₀)`.
    #[inline]
    pub fn rank_penalty(&self, rank: usize) -> f64 {
        self.lambda * rank.saturating_sub(self.k0) as f64 / self.rank_norm() as f64
    }

    /// Total penalty of a refined query whose keyword set has the given
    /// edit distance and under which the missing set ranks `rank`.
    #[inline]
    pub fn penalty(&self, edit_distance: usize, rank: usize) -> f64 {
        self.keyword_penalty(edit_distance) + self.rank_penalty(rank)
    }

    /// The penalty of the *basic* refined query (keep `doc₀`, enlarge `k₀`
    /// to `R(M,q)`): exactly `λ`.
    #[inline]
    pub fn baseline_penalty(&self) -> f64 {
        self.lambda
    }

    /// The early-stop rank bound `R_L` of Eqn. 6: a refined query with the
    /// given edit distance can have penalty ≤ `current_best` only if the
    /// missing set's rank is at most `R_L`.
    ///
    /// Returns `None` when no rank can qualify (the keyword penalty alone
    /// already exceeds `current_best`); `usize::MAX` effectively means
    /// "unbounded" (λ = 0, where the rank does not matter).
    pub fn rank_upper_limit(&self, edit_distance: usize, current_best: f64) -> Option<usize> {
        let budget = current_best - self.keyword_penalty(edit_distance);
        if budget < 0.0 {
            return None;
        }
        if self.lambda == 0.0 {
            return Some(usize::MAX);
        }
        // λ·(R_L − k₀)/rank_norm ≤ budget  →  Eqn. 6's floor.
        let r = self.k0 as f64 + budget / self.lambda * self.rank_norm() as f64;
        // Guard against absurd budgets overflowing the cast.
        if r >= usize::MAX as f64 {
            return Some(usize::MAX);
        }
        let floor = r.floor() as usize;
        // The inversion above runs through floating point, so the floor
        // can land one rank *below* the exact tie boundary (`penalty(d,
        // rank) == current_best` yet `floor < rank`). An undershot limit
        // lets a prune site drop a candidate whose f64 penalty equals
        // the shared bound, breaking the tie-permissive contract the
        // parallel solvers rely on (see `algorithms::shared`): with
        // t > 1 a higher-seq tie can publish the bound first and abort
        // the candidate that wins the deterministic tie-break. An
        // overshoot is harmless (it only prunes less), so correct
        // upward only, against the forward formula — the arithmetic
        // every prune comparison actually uses. `penalty` is monotone
        // non-decreasing in rank under f64 rounding, so the qualifying
        // ranks form a prefix: gallop past the boundary, then
        // binary-search the largest rank that still fits the budget.
        let mut lo = floor;
        let mut step: usize = 1;
        loop {
            let next = lo.saturating_add(step);
            if next == lo {
                return Some(lo); // saturated at usize::MAX
            }
            if self.penalty(edit_distance, next) <= current_best {
                lo = next;
                step = step.saturating_mul(2);
            } else {
                break; // boundary lies in [lo, next)
            }
        }
        let mut hi = lo.saturating_add(step);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.penalty(edit_distance, mid) <= current_best {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // Never tighter than Eqn. 6's floor: if the floor *overshot*,
        // the loops above never move and `lo` is still the floor.
        Some(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_penalties() {
        // Table I: k₀ = 1, R(m,q) = 3, |doc₀ ∪ m.doc| = 3, λ = 0.5.
        let model = PenaltyModel::new(0.5, 1, 3, 3);
        // q1 = (3, {t1,t2}): Δk = 2/2, Δdoc = 0 → 0.5.
        assert!((model.penalty(0, 3) - 0.5).abs() < 1e-12);
        // q2 = (1, {t2,t3}): Δk = 0, Δdoc = 2/3 → 0.5·2/3 = 0.333.
        assert!((model.penalty(2, 1) - 1.0 / 3.0).abs() < 1e-12);
        // q3 = (2, {t1,t3}): Δk = 1/2, Δdoc = 2/3 → 0.25 + 0.333 = 0.583.
        assert!((model.penalty(2, 2) - (0.25 + 1.0 / 3.0)).abs() < 1e-12);
        // q4 = (2, {t1,t2,t3}): Δk = 1/2, Δdoc = 1/3 → 0.25 + 0.1667.
        assert!((model.penalty(1, 2) - (0.25 + 1.0 / 6.0)).abs() < 1e-12);
        // Baseline is λ.
        assert_eq!(model.baseline_penalty(), 0.5);
    }

    #[test]
    fn rank_at_or_below_k0_costs_nothing() {
        let model = PenaltyModel::new(0.5, 10, 51, 5);
        assert_eq!(model.rank_penalty(10), 0.0);
        assert_eq!(model.rank_penalty(3), 0.0);
        assert!(model.rank_penalty(11) > 0.0);
    }

    #[test]
    fn paper_example4_rank_limit() {
        // Example 4: k₀ = 5, R(m,q) = 10, λ = 0.5, p_c = 0.5,
        // Δdoc/|doc₀ ∪ m.doc| = 0.4 → R_L = 8.
        let model = PenaltyModel::new(0.5, 5, 10, 5);
        // edit distance 2 over norm 5 gives 0.4.
        assert_eq!(model.rank_upper_limit(2, 0.5), Some(8));
    }

    #[test]
    fn rank_limit_none_when_keywords_alone_exceed() {
        let model = PenaltyModel::new(0.5, 5, 10, 4);
        // keyword penalty = 0.5·4/4 = 0.5 > 0.3.
        assert_eq!(model.rank_upper_limit(4, 0.3), None);
    }

    #[test]
    fn rank_limit_unbounded_when_lambda_zero() {
        let model = PenaltyModel::new(0.0, 5, 10, 4);
        assert_eq!(model.rank_upper_limit(1, 0.5), Some(usize::MAX));
        // ...but still None when keywords alone exceed the budget.
        assert_eq!(model.rank_upper_limit(4, 0.5), None);
    }

    #[test]
    fn penalty_monotone_in_rank_and_edits() {
        let model = PenaltyModel::new(0.7, 3, 16, 6);
        assert!(model.penalty(1, 5) < model.penalty(2, 5));
        assert!(model.penalty(1, 5) < model.penalty(1, 6));
    }

    #[test]
    #[should_panic(expected = "must rank below")]
    fn initial_rank_must_exceed_k0() {
        PenaltyModel::new(0.5, 10, 10, 3);
    }

    /// The tie-permissive contract of `algorithms::shared`: a rank whose
    /// exact f64 penalty equals (or undercuts) the bound must never fall
    /// outside `rank_upper_limit` — the float inversion of Eqn. 6 used
    /// to undershoot the boundary by one on ~16% of parameter draws,
    /// which made `AdvancedBS` thread-count-dependent on equal-penalty
    /// ties (found by `wnsk fuzz`, seed 916502476).
    #[test]
    fn rank_limit_is_tie_permissive() {
        // A deterministic LCG sweep over (λ, k₀, R, doc_norm, d, rank);
        // no need for a rand dependency in this crate's tests.
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..200_000 {
            let lambda = (next() % 1000) as f64 / 1000.0;
            let k0 = (next() % 20) as usize + 1;
            let initial_rank = k0 + (next() % 50) as usize + 1;
            let doc_norm = (next() % 8) as usize + 1;
            let d = (next() % (doc_norm as u64 + 1)) as usize;
            let rank = k0 + (next() % 60) as usize;
            let model = PenaltyModel::new(lambda, k0, initial_rank, doc_norm);
            let bound = model.penalty(d, rank);
            let limit = model
                .rank_upper_limit(d, bound)
                .expect("a realised penalty is always within its own budget");
            assert!(
                limit >= rank,
                "undershoot: λ={lambda} k₀={k0} R={initial_rank} \
                 norm={doc_norm} d={d} rank={rank} → limit {limit}"
            );
            // And the limit is exact, not merely permissive: one rank
            // past it must strictly exceed the bound (unless unbounded).
            if limit != usize::MAX {
                assert!(
                    model.penalty(d, limit + 1) > bound,
                    "loose: λ={lambda} k₀={k0} R={initial_rank} \
                     norm={doc_norm} d={d} rank={rank} → limit {limit}"
                );
            }
        }
    }
}
