//! The three why-not solvers (BS, AdvancedBS, KcRBased) and their
//! approximate variants.

mod approx;
mod basic;
mod count;
mod kcr;
mod shared;

pub use approx::{answer_approx_advanced, answer_approx_basic, answer_approx_kcr};
pub use basic::{answer_advanced, answer_basic, answer_basic_with_budget, AdvancedOptions};
pub use kcr::{answer_kcr, KcrOptions};
