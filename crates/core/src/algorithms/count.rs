//! Counting-based parallel rank: `R(M, q')` as an embarrassingly
//! parallel dominator count over subtree tasks.
//!
//! The rank of the worst missing object is one plus the number of
//! objects scoring *strictly* above `min_i ST(m_i, q')` (Eqn. 3 — ties
//! are never dominators, see `rank::rank_of_set`). A best-first scan
//! computes that count serially; this module computes the identical
//! count by descending only into subtrees whose score upper bound
//! exceeds the target score and tallying leaf dominators into a shared
//! atomic. Each subtree descent is an independent task for the
//! [`wnsk_exec`] pool, so one expensive rank determination parallelises
//! across workers instead of stalling a layer — the "independent
//! subtree expansion" half of the Fig. 10 executor.
//!
//! Determinism: the count over the pruned tree is a pure function of
//! the query, so the rank is bit-identical to the sequential scan for
//! every thread count and steal schedule. Early aborts (the live Opt1
//! limit) only ever fire for candidates whose exact penalty provably
//! exceeds the shared bound, which the minimal-penalty candidate never
//! does.

use crate::budget::BudgetGuard;
use crate::error::Result;
use crate::rank::SetRankOutcome;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use wnsk_exec::{ExecMetrics, Executor};
use wnsk_index::{KcrTree, LeafSimKernel, ObjectId, ScoredChildren, SetRTree, SpatialKeywordQuery};
use wnsk_storage::BlobRef;

/// A tree the counting traversal can descend: both paper indexes expose
/// score-bounded children through [`ScoredChildren`].
pub(crate) trait CountableTree: Sync {
    fn root(&self) -> BlobRef;
    fn is_empty(&self) -> bool;
    fn scored_children(
        &self,
        query: &SpatialKeywordQuery,
        node: BlobRef,
        kernel: Option<&LeafSimKernel>,
    ) -> wnsk_storage::Result<ScoredChildren>;
    /// Credits `n` subtrees pruned by the score bound to the tree's
    /// traversal stats.
    fn count_pruned(&self, n: u64);
}

impl CountableTree for SetRTree {
    fn root(&self) -> BlobRef {
        SetRTree::root(self)
    }
    fn is_empty(&self) -> bool {
        SetRTree::is_empty(self)
    }
    fn scored_children(
        &self,
        query: &SpatialKeywordQuery,
        node: BlobRef,
        kernel: Option<&LeafSimKernel>,
    ) -> wnsk_storage::Result<ScoredChildren> {
        SetRTree::scored_children_with(self, query, node, kernel)
    }
    fn count_pruned(&self, n: u64) {
        self.traversal().nodes_pruned.add(n);
    }
}

impl CountableTree for KcrTree {
    fn root(&self) -> BlobRef {
        KcrTree::root(self)
    }
    fn is_empty(&self) -> bool {
        KcrTree::is_empty(self)
    }
    fn scored_children(
        &self,
        query: &SpatialKeywordQuery,
        node: BlobRef,
        kernel: Option<&LeafSimKernel>,
    ) -> wnsk_storage::Result<ScoredChildren> {
        KcrTree::scored_children_with(self, query, node, kernel)
    }
    fn count_pruned(&self, n: u64) {
        self.traversal().nodes_pruned.add(n);
    }
}

/// Shared state of one counting rank determination. Node tasks tally
/// dominators into `dominators`; `pending` tracks the scan's own
/// outstanding node tasks so the task that completes the last one can
/// finalise the candidate.
pub(crate) struct CountScan {
    query: SpatialKeywordQuery,
    min_score: f64,
    dominators: AtomicUsize,
    pending: AtomicUsize,
    aborted: AtomicBool,
    /// Dominator ids for the Opt3 cache (empty unless collecting).
    pub(crate) found: Mutex<Vec<ObjectId>>,
    collect: bool,
    /// Bitset kernel for leaf similarities (`None` = scalar merge).
    kernel: Option<LeafSimKernel>,
}

impl CountScan {
    pub(crate) fn new(
        query: SpatialKeywordQuery,
        min_score: f64,
        collect: bool,
        kernel: Option<LeafSimKernel>,
    ) -> Self {
        CountScan {
            query,
            min_score,
            dominators: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            aborted: AtomicBool::new(false),
            found: Mutex::new(Vec::new()),
            collect,
            kernel,
        }
    }

    /// Dominators counted so far (exact once the scan has drained).
    pub(crate) fn count(&self) -> usize {
        self.dominators.load(Ordering::Acquire)
    }

    /// Marks the scan dead: remaining node tasks fast-skip their work.
    pub(crate) fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Registers one more outstanding node task. Call strictly before
    /// the task becomes visible to the pool.
    pub(crate) fn add_pending(&self) {
        self.pending.fetch_add(1, Ordering::SeqCst);
    }

    /// Marks one node task done; `true` when it was the scan's last
    /// (the caller finalises the candidate).
    pub(crate) fn complete_one(&self) -> bool {
        self.pending.fetch_sub(1, Ordering::SeqCst) == 1
    }

    /// Expands one node: leaf dominators are tallied, child subtrees
    /// whose score bound exceeds the target are handed to `spawn`
    /// (which must route them back into this scan as node tasks).
    pub(crate) fn expand_node<T: CountableTree + ?Sized>(
        &self,
        tree: &T,
        node: BlobRef,
        mut spawn: impl FnMut(BlobRef),
    ) -> Result<()> {
        match tree
            .scored_children(&self.query, node, self.kernel.as_ref())
            .map_err(crate::WhyNotError::Storage)?
        {
            ScoredChildren::Leaf(objects) => {
                let mut n = 0usize;
                for (id, score) in objects {
                    if score > self.min_score {
                        n += 1;
                        if self.collect {
                            self.found.lock().push(id);
                        }
                    }
                }
                if n > 0 {
                    self.dominators.fetch_add(n, Ordering::AcqRel);
                }
            }
            ScoredChildren::Internal(children) => {
                let mut pruned = 0u64;
                for (child, bound) in children {
                    // Strictly-greater: a subtree bounded at exactly the
                    // target score can only contain ties, never a
                    // dominator.
                    if bound > self.min_score {
                        spawn(child);
                    } else {
                        pruned += 1;
                    }
                }
                if pruned > 0 {
                    tree.count_pruned(pruned);
                }
            }
        }
        Ok(())
    }
}

/// Computes `R(M, q)` — one plus the strict-dominator count of the
/// worst-scoring target — by fanning subtree tasks across `exec`.
/// Returns the identical rank to the sequential `rank_of_set` scan.
pub(crate) fn parallel_rank(
    tree: &(impl CountableTree + ?Sized),
    exec: &Executor,
    metrics: &ExecMetrics,
    query: &SpatialKeywordQuery,
    targets: &[(ObjectId, f64)],
    guard: &BudgetGuard,
) -> Result<SetRankOutcome> {
    assert!(
        !targets.is_empty(),
        "parallel_rank needs at least one target"
    );
    if tree.is_empty() {
        return Ok(SetRankOutcome::Exact { rank: 1 });
    }
    let min_score = targets
        .iter()
        .map(|&(_, s)| s)
        .fold(f64::INFINITY, f64::min);
    // The initial-rank scan runs against the *initial* query, before a
    // question universe exists — it stays on the scalar path under both
    // kernels (one scan per question; nothing to amortise).
    let scan = CountScan::new(query.clone(), min_score, false, None);
    exec.run_dynamic(
        vec![tree.root()],
        metrics,
        || guard.check().is_some(),
        |_| (),
        |_state, node, ctx| -> Result<()> {
            scan.expand_node(tree, node, |child| ctx.spawn(child))
        },
    )?;
    if let Some(reason) = guard.breached() {
        return Ok(SetRankOutcome::Breached { reason });
    }
    Ok(SetRankOutcome::Exact {
        rank: scan.count() + 1,
    })
}
