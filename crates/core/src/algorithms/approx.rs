//! The sampling-based approximate algorithm (§VI-B): evaluate only the
//! `T` candidate keyword sets with the highest particularity benefit and
//! return the best refined query among them (plus the always-valid basic
//! refinement, so the answer still contains every missing object).

use crate::algorithms::basic::{self, CandidateSource};
use crate::algorithms::kcr;
use crate::algorithms::{AdvancedOptions, KcrOptions};
use crate::budget::{AnswerQuality, DegradeReason, QueryBudget};
use crate::enumeration::CandidateEnumerator;
use crate::error::{Result, WhyNotError};
use crate::question::{AlgoStats, RefinedQuery, WhyNotAnswer, WhyNotContext, WhyNotQuestion};
use std::time::Instant;
use wnsk_index::{Dataset, KcrTree, SetRTree};

/// Draws the §VI-B greedy sample of size `t` for a question.
///
/// Exposed for experiments; the `answer_approx_*` functions call it
/// internally. The sample is ordered by descending benefit.
pub(crate) fn draw_sample(
    dataset: &Dataset,
    question: &WhyNotQuestion,
    initial_rank: usize,
    t: usize,
) -> Result<Vec<crate::Candidate>> {
    let ctx = WhyNotContext::new(dataset, question, initial_rank)?;
    Ok(CandidateEnumerator::new(&ctx).sample_top(t))
}

/// A cheap initial-rank estimate used only to build the sampling context
/// (the algorithms recompute `R(M,q)` through their index, preserving the
/// paper's I/O accounting).
fn brute_initial_rank(dataset: &Dataset, question: &WhyNotQuestion) -> usize {
    question
        .missing
        .iter()
        .map(|&id| dataset.rank_of(id, &question.query))
        .max()
        .unwrap_or(1)
}

/// How many top-benefit candidates the degraded fallback evaluates. Small
/// enough that the in-memory evaluation stays well inside a typical grace
/// window, large enough to usually beat the bare baseline.
const DEGRADED_SAMPLE: usize = 16;

/// The last rung before failure: the budget is gone, so answer from
/// memory alone. Evaluates up to [`DEGRADED_SAMPLE`] top-benefit
/// candidates by brute force (no page I/O), seeds with the always-valid
/// baseline refinement and the best answer found before the breach, and
/// tags the result [`AnswerQuality::Degraded`].
///
/// `initial_rank` is `R(M, q)` if the exact solver got far enough to know
/// it; otherwise it is recomputed in memory inside the grace window.
/// Returns [`WhyNotError::BudgetExhausted`] only when even that cannot
/// finish — with a known initial rank the baseline makes an answer always
/// constructible.
pub(crate) fn degraded_fallback(
    dataset: &Dataset,
    question: &WhyNotQuestion,
    initial_rank: Option<usize>,
    best_so_far: Option<RefinedQuery>,
    reason: DegradeReason,
    budget: &QueryBudget,
    mut stats: AlgoStats,
) -> Result<WhyNotAnswer> {
    let fallback_start = Instant::now();
    let grace = budget.fallback_grace;
    let over = || fallback_start.elapsed() >= grace;

    let initial_rank = match initial_rank {
        Some(rank) => rank,
        None => {
            let mut rank = 0usize;
            for &id in &question.missing {
                if over() {
                    return Err(WhyNotError::BudgetExhausted { reason });
                }
                rank = rank.max(dataset.rank_of(id, &question.query));
            }
            rank.max(1)
        }
    };

    let ctx = WhyNotContext::new(dataset, question, initial_rank)?;
    // The baseline (penalty exactly λ) guarantees a valid answer; the
    // pre-breach best can only improve on it.
    let mut best = ctx.baseline();
    if let Some(prev) = best_so_far {
        if prev.penalty < best.penalty {
            best = prev;
        }
    }

    if !over() {
        let sample = CandidateEnumerator::new(&ctx).sample_top(DEGRADED_SAMPLE);
        for cand in sample {
            if over() {
                break;
            }
            let targets = ctx.missing_targets(&cand.doc);
            let min_score = targets
                .iter()
                .map(|&(_, s)| s)
                .fold(f64::INFINITY, f64::min);
            let q_s = ctx.query.with_doc(cand.doc.clone());
            // Exact brute-force R(M, q_S): no page reads, only CPU.
            let rank = 1 + dataset
                .live_objects()
                .filter(|o| dataset.score(o, &q_s) > min_score)
                .count();
            let penalty = ctx.penalty.penalty(cand.edit_distance, rank);
            if penalty < best.penalty {
                best = RefinedQuery {
                    doc: cand.doc,
                    k: ctx.refined_k(rank),
                    rank,
                    edit_distance: cand.edit_distance,
                    penalty,
                };
            }
        }
    }

    stats.degraded = 1;
    stats.wall += fallback_start.elapsed();
    Ok(WhyNotAnswer {
        refined: best,
        stats,
        quality: AnswerQuality::Degraded { reason },
    })
}

/// Approximate **BS** over a sample of `t` candidates.
pub fn answer_approx_basic(
    dataset: &Dataset,
    tree: &SetRTree,
    question: &WhyNotQuestion,
    t: usize,
) -> Result<WhyNotAnswer> {
    question.validate(dataset)?;
    let sample = draw_sample(dataset, question, brute_initial_rank(dataset, question), t)?;
    basic::run(
        dataset,
        tree,
        question,
        AdvancedOptions::none(),
        CandidateSource::Sample(sample),
    )
}

/// Approximate **AdvancedBS** over a sample of `t` candidates.
pub fn answer_approx_advanced(
    dataset: &Dataset,
    tree: &SetRTree,
    question: &WhyNotQuestion,
    opts: AdvancedOptions,
    t: usize,
) -> Result<WhyNotAnswer> {
    question.validate(dataset)?;
    let sample = draw_sample(dataset, question, brute_initial_rank(dataset, question), t)?;
    basic::run(
        dataset,
        tree,
        question,
        opts,
        CandidateSource::Sample(sample),
    )
}

/// Approximate **KcRBased** over a sample of `t` candidates.
pub fn answer_approx_kcr(
    dataset: &Dataset,
    tree: &KcrTree,
    question: &WhyNotQuestion,
    opts: KcrOptions,
    t: usize,
) -> Result<WhyNotAnswer> {
    question.validate(dataset)?;
    let sample = draw_sample(dataset, question, brute_initial_rank(dataset, question), t)?;
    kcr::run(dataset, tree, question, opts, Some(sample))
}
