//! The sampling-based approximate algorithm (§VI-B): evaluate only the
//! `T` candidate keyword sets with the highest particularity benefit and
//! return the best refined query among them (plus the always-valid basic
//! refinement, so the answer still contains every missing object).

use crate::algorithms::basic::{self, CandidateSource};
use crate::algorithms::kcr;
use crate::algorithms::{AdvancedOptions, KcrOptions};
use crate::enumeration::CandidateEnumerator;
use crate::error::Result;
use crate::question::{WhyNotAnswer, WhyNotContext, WhyNotQuestion};
use wnsk_index::{Dataset, KcrTree, SetRTree};

/// Draws the §VI-B greedy sample of size `t` for a question.
///
/// Exposed for experiments; the `answer_approx_*` functions call it
/// internally. The sample is ordered by descending benefit.
pub(crate) fn draw_sample(
    dataset: &Dataset,
    question: &WhyNotQuestion,
    initial_rank: usize,
    t: usize,
) -> Result<Vec<crate::Candidate>> {
    let ctx = WhyNotContext::new(dataset, question, initial_rank)?;
    Ok(CandidateEnumerator::new(&ctx).sample_top(t))
}

/// A cheap initial-rank estimate used only to build the sampling context
/// (the algorithms recompute `R(M,q)` through their index, preserving the
/// paper's I/O accounting).
fn brute_initial_rank(dataset: &Dataset, question: &WhyNotQuestion) -> usize {
    question
        .missing
        .iter()
        .map(|&id| dataset.rank_of(id, &question.query))
        .max()
        .unwrap_or(1)
}

/// Approximate **BS** over a sample of `t` candidates.
pub fn answer_approx_basic(
    dataset: &Dataset,
    tree: &SetRTree,
    question: &WhyNotQuestion,
    t: usize,
) -> Result<WhyNotAnswer> {
    question.validate(dataset)?;
    let sample = draw_sample(dataset, question, brute_initial_rank(dataset, question), t)?;
    basic::run(
        dataset,
        tree,
        question,
        AdvancedOptions::none(),
        CandidateSource::Sample(sample),
    )
}

/// Approximate **AdvancedBS** over a sample of `t` candidates.
pub fn answer_approx_advanced(
    dataset: &Dataset,
    tree: &SetRTree,
    question: &WhyNotQuestion,
    opts: AdvancedOptions,
    t: usize,
) -> Result<WhyNotAnswer> {
    question.validate(dataset)?;
    let sample = draw_sample(dataset, question, brute_initial_rank(dataset, question), t)?;
    basic::run(dataset, tree, question, opts, CandidateSource::Sample(sample))
}

/// Approximate **KcRBased** over a sample of `t` candidates.
pub fn answer_approx_kcr(
    dataset: &Dataset,
    tree: &KcrTree,
    question: &WhyNotQuestion,
    opts: KcrOptions,
    t: usize,
) -> Result<WhyNotAnswer> {
    question.validate(dataset)?;
    let sample = draw_sample(dataset, question, brute_initial_rank(dataset, question), t)?;
    kcr::run(dataset, tree, question, opts, Some(sample))
}
