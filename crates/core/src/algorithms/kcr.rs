//! The **KcRBased** bound-and-prune algorithm (§V, Algorithms 3 & 4).
//!
//! One traversal of the KcR-tree scores a whole batch `CK` of candidate
//! keyword sets at once. For each candidate `S` the traversal maintains a
//! *frontier* of tree nodes; the missing set's rank is bracketed by
//!
//! ```text
//! rank_lo(S) = 1 + Σ_frontier MinDom(N, S, M)
//! rank_hi(S) = 1 + Σ_frontier MaxDom(N, S, M)
//! ```
//!
//! (`MaxDom(·,·,M) = max_i MaxDom(·,·,m_i)`, `MinDom = min_i`, §VI-A).
//! Expanding a node replaces its contribution with its children's,
//! tightening both bounds; leaf entries contribute their *exact*
//! dominance. Because a refined query `(S, max(k₀, rank_hi))` is always a
//! valid answer (its `k'` covers the true rank), its penalty upper bound
//! is *achievable*, so the shared best penalty `p_c` decreases
//! monotonically and pruning candidates with `penalty(rank_lo) > p_c` is
//! sound even before bounds converge. (The paper's pseudocode assumes the
//! frontier sums only tighten; keeping explicit frontier sums makes the
//! implementation correct regardless.)
//!
//! Algorithm 4 drives the batches in ascending edit distance and stops as
//! soon as the next layer's keyword penalty alone can no longer beat
//! `p_c`; batches may additionally be split across worker threads
//! (Fig. 10's parallel variant).

use crate::algorithms::approx::degraded_fallback;
use crate::algorithms::basic::layer_sample;
use crate::algorithms::SharedBest;
use crate::budget::{AnswerQuality, BudgetGuard, QueryBudget};
use crate::enumeration::{Candidate, CandidateEnumerator};
use crate::error::Result;
use crate::question::{AlgoStats, RefinedQuery, WhyNotAnswer, WhyNotContext, WhyNotQuestion};
use crate::rank::SetRankOutcome;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wnsk_index::kcr::{max_dom, min_dom, tau_lower, tau_upper, KcrTopKSearch, PreparedNode};
use wnsk_index::{st_score, Dataset, KcrNode, KcrTree, NodeSummary, ObjectId};
use wnsk_storage::BlobRef;
use wnsk_text::KeywordSet;

/// Options for the KcR-based solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KcrOptions {
    /// Worker threads; candidate batches are distributed across them with
    /// the best penalty synchronised (§IV-C4 / Fig. 10).
    pub threads: usize,
    /// §V-D: each edit-distance layer is split into benefit-ordered
    /// batches of this size, so early batches lower `p_c` before later
    /// ones pay for root-level bound evaluations — and each traversal
    /// keeps its per-node work proportional to a small `|CK|`.
    pub batch_size: usize,
    /// Resource limits; on exhaustion the solver degrades to the
    /// in-memory approximate fallback instead of running to completion.
    pub budget: QueryBudget,
}

impl Default for KcrOptions {
    fn default() -> Self {
        KcrOptions {
            threads: 1,
            batch_size: 64,
            budget: QueryBudget::unlimited(),
        }
    }
}

#[derive(Default)]
struct SharedStats {
    candidates_total: AtomicU64,
    pruned_by_bound: AtomicU64,
    nodes_expanded: AtomicU64,
}

/// **KcRBased**: Algorithm 4 over the full candidate space.
pub fn answer_kcr(
    dataset: &Dataset,
    tree: &KcrTree,
    question: &WhyNotQuestion,
    opts: KcrOptions,
) -> Result<WhyNotAnswer> {
    run(dataset, tree, question, opts, None)
}

pub(crate) fn run(
    dataset: &Dataset,
    tree: &KcrTree,
    question: &WhyNotQuestion,
    opts: KcrOptions,
    sample: Option<Vec<Candidate>>,
) -> Result<WhyNotAnswer> {
    question.validate(dataset)?;
    let start = Instant::now();
    let io_before = tree.pool().stats();
    let guard = BudgetGuard::new(opts.budget, Arc::clone(tree.pool()));

    // Algorithm 4 line 1: determine R(M, q).
    let initial_targets: Vec<(ObjectId, f64)> = question
        .missing
        .iter()
        .map(|&id| (id, dataset.score(dataset.object(id), &question.query)))
        .collect();
    let mut scan = KcrTopKSearch::new(tree, question.query.clone());
    let outcome = crate::rank::rank_of_set(&mut scan, &initial_targets, None, false, Some(&guard))?;
    drop(scan);
    let phase_initial_rank = start.elapsed();
    let initial_rank = match outcome {
        SetRankOutcome::Exact { rank } => rank,
        _ => {
            let reason = guard.breached().expect("scan only stops early on breach");
            let stats = AlgoStats {
                wall: start.elapsed(),
                io: tree.pool().stats().since(&io_before).physical_reads,
                phase_initial_rank,
                ..AlgoStats::default()
            };
            return degraded_fallback(dataset, question, None, None, reason, &opts.budget, stats);
        }
    };

    let ctx = WhyNotContext::new(dataset, question, initial_rank)?;
    let enumerator = CandidateEnumerator::new(&ctx);

    // Line 2: the basic refined query initialises the best.
    let best = SharedBest::new(ctx.baseline());
    let stats = SharedStats::default();

    // Layers are generated lazily for the full candidate space so a
    // budget breach skips the exponentially larger deep layers entirely.
    let mut phase_enumeration = Duration::ZERO;
    let mut sample_size = None;
    let ready_layers: Option<Vec<(usize, Vec<Candidate>)>> = match sample {
        None => None,
        Some(sample) => {
            sample_size = Some(sample.len());
            let t = Instant::now();
            let layers = layer_sample(sample);
            phase_enumeration += t.elapsed();
            Some(layers)
        }
    };
    let depths: Vec<usize> = match &ready_layers {
        None => (1..=enumerator.max_edit_distance()).collect(),
        Some(layers) => layers.iter().map(|&(d, _)| d).collect(),
    };
    let mut ready_layers = ready_layers.map(|l| l.into_iter());

    let verification_started = Instant::now();
    for d in depths {
        if guard.check().is_some() {
            break;
        }
        let layer: Vec<Candidate> = match &mut ready_layers {
            Some(iter) => iter.next().expect("depths mirror the ready layers").1,
            None => {
                let t = Instant::now();
                let layer = enumerator.layer(d, true);
                phase_enumeration += t.elapsed();
                layer
            }
        };
        // Line 4: the next batch's keyword penalty alone disqualifies it.
        if ctx.penalty.keyword_penalty(d) >= best.penalty() {
            stats
                .pruned_by_bound
                .fetch_add(layer.len() as u64, Ordering::Relaxed);
            break;
        }
        stats
            .candidates_total
            .fetch_add(layer.len() as u64, Ordering::Relaxed);
        let batch_size = opts.batch_size.max(1);
        let batches: Vec<&[Candidate]> = layer.chunks(batch_size).collect();
        if opts.threads <= 1 {
            for batch in &batches {
                if guard.check().is_some() {
                    break;
                }
                // Batches run in benefit order; a later batch whose whole
                // layer is already beaten is pruned by the root bounds
                // almost immediately.
                bound_and_prune(tree, &ctx, batch, &best, &stats, &guard)?;
            }
        } else {
            let next = AtomicU64::new(0);
            crossbeam::thread::scope(|scope| -> Result<()> {
                let mut handles = Vec::new();
                for _ in 0..opts.threads.min(batches.len()) {
                    let ctx = &ctx;
                    let best = &best;
                    let stats = &stats;
                    let next = &next;
                    let batches = &batches;
                    let guard = &guard;
                    handles.push(scope.spawn(move |_| -> Result<()> {
                        loop {
                            if guard.check().is_some() {
                                return Ok(());
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                            let Some(batch) = batches.get(i) else {
                                return Ok(());
                            };
                            bound_and_prune(tree, ctx, batch, best, stats, guard)?;
                        }
                    }));
                }
                for h in handles {
                    h.join().expect("worker thread panicked")?;
                }
                Ok(())
            })
            .expect("thread scope failed")?;
        }
        if guard.breached().is_some() {
            break;
        }
    }

    let refined = best.into_inner();
    let stats = AlgoStats {
        wall: start.elapsed(),
        io: tree.pool().stats().since(&io_before).physical_reads,
        candidates_total: stats.candidates_total.into_inner(),
        pruned_by_bound: stats.pruned_by_bound.into_inner(),
        nodes_expanded: stats.nodes_expanded.into_inner(),
        phase_initial_rank,
        phase_enumeration,
        phase_verification: verification_started.elapsed(),
        ..AlgoStats::default()
    };
    if let Some(reason) = guard.breached() {
        return degraded_fallback(
            dataset,
            question,
            Some(initial_rank),
            Some(refined),
            reason,
            &opts.budget,
            stats,
        );
    }
    let quality = match sample_size {
        Some(sample_size) => AnswerQuality::Approximate { sample_size },
        None => AnswerQuality::Exact,
    };
    Ok(WhyNotAnswer {
        refined,
        stats,
        quality,
    })
}

/// Per-candidate traversal state.
struct CandState {
    doc: KeywordSet,
    edit_distance: usize,
    /// `TSim(m_i, S)` per missing object.
    m_tsims: Vec<f64>,
    /// `ST(m_i, q_S)` per missing object (for exact leaf dominance).
    m_scores: Vec<f64>,
    rank_hi: i64,
    rank_lo: i64,
    active: bool,
}

struct QueuedNode {
    node: BlobRef,
    /// Per-candidate `(MaxDom, MinDom)` contribution of this node to the
    /// frontier sums.
    contrib: Vec<(u32, u32)>,
}

/// Algorithm 3: finds the best refined query among `candidates` in one
/// KcR-tree traversal, folding improvements into the shared best.
fn bound_and_prune(
    tree: &KcrTree,
    ctx: &WhyNotContext<'_>,
    candidates: &[Candidate],
    best: &SharedBest,
    stats: &SharedStats,
    guard: &BudgetGuard,
) -> Result<()> {
    if candidates.is_empty() {
        return Ok(());
    }
    let alpha = ctx.query.alpha;
    let world = tree.world();

    let mut cands: Vec<CandState> = candidates
        .iter()
        .map(|c| {
            let m_tsims: Vec<f64> = ctx
                .missing
                .iter()
                .map(|m| ctx.query.sim.similarity(&m.doc, &c.doc))
                .collect();
            let m_scores: Vec<f64> = ctx
                .missing
                .iter()
                .zip(&m_tsims)
                .map(|(m, &tsim)| st_score(alpha, m.sdist, tsim))
                .collect();
            CandState {
                doc: c.doc.clone(),
                edit_distance: c.edit_distance,
                m_tsims,
                m_scores,
                rank_hi: 1,
                rank_lo: 1,
                active: true,
            }
        })
        .collect();

    // Lines 2–6: initial bounds from the root summary.
    let root_summary = tree.root_summary().map_err(crate::WhyNotError::Storage)?;
    let root_contrib = node_contrib(&root_summary, ctx, &mut cands, world, alpha);
    for (cand, &(hi, lo)) in cands.iter_mut().zip(&root_contrib) {
        cand.rank_hi += hi as i64;
        cand.rank_lo += lo as i64;
    }
    let traversal = tree.traversal();
    refresh_candidates(ctx, &mut cands, best, stats, traversal);
    if !cands.iter().any(|c| c.active) {
        return Ok(());
    }

    let mut queue: VecDeque<QueuedNode> = VecDeque::new();
    queue.push_back(QueuedNode {
        node: tree.root(),
        contrib: root_contrib,
    });

    // Lines 8–32: traverse, tightening the frontier sums.
    while let Some(qn) = queue.pop_front() {
        // Cooperative checkpoint: each pop costs at least one page read,
        // so checking per pop keeps overhead negligible. The best found
        // so far stays valid (rank_hi penalties are achievable).
        if guard.check().is_some() {
            return Ok(());
        }
        if !cands.iter().any(|c| c.active) {
            // Every candidate retired: nothing enqueued will be visited.
            traversal.nodes_pruned.add(queue.len() as u64 + 1);
            return Ok(());
        }
        let node = tree
            .read_node(qn.node)
            .map_err(crate::WhyNotError::Storage)?;
        stats.nodes_expanded.fetch_add(1, Ordering::Relaxed);

        // Gather each child's per-candidate contribution.
        let mut child_nodes: Vec<(BlobRef, Vec<(u32, u32)>)> = Vec::new();
        let mut sums: Vec<(i64, i64)> = vec![(0, 0); cands.len()];
        match node {
            KcrNode::Internal(entries) => {
                for e in &entries {
                    let summary = NodeSummary {
                        mbr: e.mbr,
                        cnt: e.cnt,
                        kcm: tree.read_kcm(e.kcm).map_err(crate::WhyNotError::Storage)?,
                    };
                    let contrib = node_contrib(&summary, ctx, &mut cands, world, alpha);
                    for (i, &(hi, lo)) in contrib.iter().enumerate() {
                        sums[i].0 += hi as i64;
                        sums[i].1 += lo as i64;
                    }
                    // Line 29–32: only children whose bounds are still
                    // loose for some active candidate can tighten anything.
                    let loose = cands
                        .iter()
                        .zip(&contrib)
                        .any(|(c, &(hi, lo))| c.active && hi != lo);
                    if loose {
                        child_nodes.push((e.child, contrib));
                    } else {
                        // The dominance bounds agree for every active
                        // candidate: this subtree can never tighten the
                        // frontier sums, so it is pruned unvisited.
                        traversal.nodes_pruned.inc();
                    }
                }
            }
            KcrNode::Leaf(entries) => {
                for e in &entries {
                    let doc = tree.read_doc(e.doc).map_err(crate::WhyNotError::Storage)?;
                    let sdist = world.normalized_dist(&e.loc, &ctx.query.loc);
                    for (i, cand) in cands.iter().enumerate() {
                        if !cand.active {
                            continue;
                        }
                        let score =
                            st_score(alpha, sdist, ctx.query.sim.similarity(&doc, &cand.doc));
                        // max_i / min_i of per-missing dominance flags.
                        let mut any = false;
                        let mut all = true;
                        for &m_score in &cand.m_scores {
                            if score > m_score {
                                any = true;
                            } else {
                                all = false;
                            }
                        }
                        sums[i].0 += any as i64;
                        sums[i].1 += all as i64;
                    }
                }
            }
        }

        // Lines 18–19: replace this node's contribution by its children's.
        for (i, cand) in cands.iter_mut().enumerate() {
            if !cand.active {
                continue;
            }
            cand.rank_hi += sums[i].0 - qn.contrib[i].0 as i64;
            cand.rank_lo += sums[i].1 - qn.contrib[i].1 as i64;
            debug_assert!(cand.rank_lo >= 1 && cand.rank_hi >= cand.rank_lo);
        }
        refresh_candidates(ctx, &mut cands, best, stats, traversal);

        for (node, contrib) in child_nodes {
            queue.push_back(QueuedNode { node, contrib });
        }
    }
    Ok(())
}

/// Computes the per-candidate `(MaxDom, MinDom)` of one node summary,
/// maximised/minimised over the missing objects (§VI-A).
fn node_contrib(
    summary: &NodeSummary,
    ctx: &WhyNotContext<'_>,
    cands: &mut [CandState],
    world: &wnsk_geo::WorldBounds,
    alpha: f64,
) -> Vec<(u32, u32)> {
    let prep = PreparedNode::new(summary);
    let min_dist = world.normalized_min_dist(&ctx.query.loc, &summary.mbr);
    let max_dist = world.normalized_max_dist(&ctx.query.loc, &summary.mbr);
    cands
        .iter()
        .map(|cand| {
            if !cand.active {
                return (0, 0);
            }
            let mut hi = 0u32;
            let mut lo = u32::MAX;
            for (m, &tsim) in ctx.missing.iter().zip(&cand.m_tsims) {
                let tl = tau_lower(alpha, min_dist, m.sdist, tsim);
                let tu = tau_upper(alpha, max_dist, m.sdist, tsim);
                hi = hi.max(max_dom(&prep, &cand.doc, tl, ctx.query.sim));
                lo = lo.min(min_dom(&prep, &cand.doc, tu, ctx.query.sim));
            }
            (hi, lo)
        })
        .collect()
}

/// Lines 20–26: recompute penalty bounds, improve the best with the
/// (always achievable) upper bound, prune candidates whose lower bound
/// already exceeds the best.
fn refresh_candidates(
    ctx: &WhyNotContext<'_>,
    cands: &mut [CandState],
    best: &SharedBest,
    stats: &SharedStats,
    traversal: &wnsk_index::TraversalStats,
) {
    for cand in cands.iter_mut() {
        if !cand.active {
            continue;
        }
        let rank_hi = cand.rank_hi as usize;
        let rank_lo = cand.rank_lo as usize;
        let pn_hi = ctx.penalty.penalty(cand.edit_distance, rank_hi);
        let pn_lo = ctx.penalty.penalty(cand.edit_distance, rank_lo);
        // The refined query (S, max(k₀, rank_hi)) certainly contains M,
        // so pn_hi is achievable. The lock-free read keeps the hot path
        // allocation-free; `improve` re-checks under the lock.
        if pn_hi < best.penalty() {
            best.improve(RefinedQuery {
                doc: cand.doc.clone(),
                k: ctx.refined_k(rank_hi),
                rank: rank_hi,
                edit_distance: cand.edit_distance,
                penalty: pn_hi,
            });
        }
        if pn_lo > best.penalty() {
            // Theorem 3: the MinDom-derived penalty lower bound already
            // exceeds the best refined query.
            cand.active = false;
            stats.pruned_by_bound.fetch_add(1, Ordering::Relaxed);
            traversal.prune_mindom.inc();
        } else if cand.rank_hi == cand.rank_lo {
            // Fully converged: the frontier sums can never change again
            // (every per-node contribution gap is zero), and the exact
            // penalty has just been offered to `best` — retire the
            // candidate so deeper nodes stop paying for it. Theorem 2's
            // MaxDom bound closed the gap without object-level access.
            cand.active = false;
            traversal.prune_maxdom.inc();
        }
    }
}
