//! The **KcRBased** bound-and-prune algorithm (§V, Algorithms 3 & 4).
//!
//! One traversal of the KcR-tree scores a whole batch `CK` of candidate
//! keyword sets at once. For each candidate `S` the traversal maintains a
//! *frontier* of tree nodes; the missing set's rank is bracketed by
//!
//! ```text
//! rank_lo(S) = 1 + Σ_frontier MinDom(N, S, M)
//! rank_hi(S) = 1 + Σ_frontier MaxDom(N, S, M)
//! ```
//!
//! (`MaxDom(·,·,M) = max_i MaxDom(·,·,m_i)`, `MinDom = min_i`, §VI-A).
//! Expanding a node replaces its contribution with its children's,
//! tightening both bounds; leaf entries contribute their *exact*
//! dominance. Because a refined query `(S, max(k₀, rank_hi))` is always a
//! valid answer (its `k'` covers the true rank), its penalty upper bound
//! is *achievable*, so the shared best penalty `p_c` decreases
//! monotonically and pruning candidates with `penalty(rank_lo) > p_c` is
//! sound even before bounds converge. (The paper's pseudocode assumes the
//! frontier sums only tighten; keeping explicit frontier sums makes the
//! implementation correct regardless.)
//!
//! Algorithm 4 drives the batches in ascending edit distance and stops as
//! soon as the next layer's keyword penalty alone can no longer beat
//! `p_c`. Each batch's traversal is an independent subtree-expansion
//! unit: the [`wnsk_exec`] work-stealing pool hands batches to workers,
//! which prune against the shared atomic bound mid-flight and keep
//! per-worker local bests that merge at the layer's sequence barrier —
//! so MaxDom/MinDom tightening stays deterministic and the refined
//! query is bit-identical to the single-threaded run (Fig. 10's
//! parallel variant; see [`crate::algorithms::shared`]).

use crate::algorithms::approx::degraded_fallback;
use crate::algorithms::basic::layer_sample;
use crate::algorithms::count;
use crate::algorithms::shared::{BestEntry, BestKey, LocalBest, SharedBest};
use crate::budget::{AnswerQuality, BudgetGuard, QueryBudget};
use crate::enumeration::{Candidate, CandidateEnumerator};
use crate::error::Result;
use crate::question::{AlgoStats, RefinedQuery, WhyNotAnswer, WhyNotContext, WhyNotQuestion};
use crate::rank::SetRankOutcome;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wnsk_exec::{ExecMetrics, Executor, SharedBound, TaskContext, WorkerHandle};
use wnsk_index::kcr::{
    max_dom_counts, min_dom_counts, tau_lower, tau_upper, KcrTopKSearch, PreparedNode,
};
use wnsk_index::{st_score, Dataset, KcrNode, KcrTree, NodeSummary, ObjectId};
use wnsk_obs::{Hist, SpanId, TracePayload, Tracer};
use wnsk_storage::BlobRef;
use wnsk_text::{Kernel, KeywordSet, ProjectedSet};

/// Options for the KcR-based solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KcrOptions {
    /// Worker threads; candidate batches are distributed across them with
    /// the best penalty synchronised (§IV-C4 / Fig. 10).
    pub threads: usize,
    /// Set-arithmetic kernel for the dominator bounds and leaf
    /// similarities; both produce bit-identical answers and work metrics
    /// (see `docs/KERNELS.md`), so this is purely a wall-time A/B knob.
    pub kernel: Kernel,
    /// §V-D: each edit-distance layer is split into benefit-ordered
    /// batches of this size, so early batches lower `p_c` before later
    /// ones pay for root-level bound evaluations — and each traversal
    /// keeps its per-node work proportional to a small `|CK|`.
    pub batch_size: usize,
    /// Resource limits; on exhaustion the solver degrades to the
    /// in-memory approximate fallback instead of running to completion.
    pub budget: QueryBudget,
    /// A precomputed initial rank `R(M, q₀)` (Algorithm 4 line 1). When
    /// set, the initial-rank phase is skipped entirely — the serving
    /// layer supplies this from its cross-query answer cache, where the
    /// rank is derived from a cached top-k list containing every missing
    /// object. The hint must equal the exact rank the scan would produce
    /// (strict dominators + 1); it is still validated against `k`
    /// ([`crate::WhyNotError::NotMissing`] on a rank ≤ k).
    pub initial_rank_hint: Option<usize>,
    /// Test-only fault: over-count the initial rank `R(M, q₀)` by one,
    /// perturbing the Eqn. 4 `Δk` normaliser. This exists so the
    /// differential fuzzing harness can prove its BS-oracle cross-check
    /// catches a realistic off-by-one (`wnsk fuzz --inject-bug rank`);
    /// nothing outside the fuzz pipeline ever sets it.
    #[doc(hidden)]
    pub inject_rank_bug: bool,
}

impl Default for KcrOptions {
    fn default() -> Self {
        KcrOptions {
            threads: 1,
            kernel: Kernel::default(),
            batch_size: 64,
            budget: QueryBudget::unlimited(),
            initial_rank_hint: None,
            inject_rank_bug: false,
        }
    }
}

#[derive(Default)]
struct SharedStats {
    candidates_total: AtomicU64,
    pruned_by_bound: AtomicU64,
    nodes_expanded: AtomicU64,
}

/// **KcRBased**: Algorithm 4 over the full candidate space.
pub fn answer_kcr(
    dataset: &Dataset,
    tree: &KcrTree,
    question: &WhyNotQuestion,
    opts: KcrOptions,
) -> Result<WhyNotAnswer> {
    run(dataset, tree, question, opts, None)
}

pub(crate) fn run(
    dataset: &Dataset,
    tree: &KcrTree,
    question: &WhyNotQuestion,
    opts: KcrOptions,
    sample: Option<Vec<Candidate>>,
) -> Result<WhyNotAnswer> {
    // The tracer lives on the tree (next to the traversal counters it
    // must stay in lockstep with); the query span wraps the whole run
    // so every path — including budget degradation and I/O errors —
    // leaves the scope clean.
    let tracer = tree.traversal().tracer().clone();
    let query_span = tracer.begin("kcr.query");
    tracer.set_scope(query_span.id());
    let result = run_inner(
        dataset,
        tree,
        question,
        opts,
        sample,
        &tracer,
        query_span.id(),
    );
    tracer.clear_scope();
    tracer.end(query_span);
    result
}

#[allow(clippy::too_many_arguments)]
fn run_inner(
    dataset: &Dataset,
    tree: &KcrTree,
    question: &WhyNotQuestion,
    opts: KcrOptions,
    sample: Option<Vec<Candidate>>,
    tracer: &Tracer,
    query: SpanId,
) -> Result<WhyNotAnswer> {
    question.validate(dataset)?;
    let start = Instant::now();
    let io_before = tree.pool().stats();
    let guard = BudgetGuard::new(opts.budget, Arc::clone(tree.pool()));

    // Work-stealing pool, one per query: reused for the initial rank and
    // every verification layer.
    let exec = Executor::new(opts.threads);
    let mut metrics = ExecMetrics::new(exec.threads());
    metrics.set_tracer(tracer.clone());
    let task_hist = Hist::new();
    metrics.set_task_hist(task_hist.clone());

    // Algorithm 4 line 1: determine R(M, q). With several workers the
    // rank is computed as a parallel dominator count over subtree tasks
    // (bit-identical to the scan — see [`crate::algorithms::count`]).
    let initial_targets: Vec<(ObjectId, f64)> = question
        .missing
        .iter()
        .map(|&id| (id, dataset.score(dataset.object(id), &question.query)))
        .collect();
    let rank_span = tracer.begin("phase.initial_rank");
    tracer.set_scope(rank_span.id());
    let outcome = if let Some(rank) = opts.initial_rank_hint {
        SetRankOutcome::Exact { rank }
    } else if exec.threads() > 1 {
        count::parallel_rank(
            tree,
            &exec,
            &metrics,
            &question.query,
            &initial_targets,
            &guard,
        )?
    } else {
        let mut scan = KcrTopKSearch::new(tree, question.query.clone());
        let outcome =
            crate::rank::rank_of_set(&mut scan, &initial_targets, None, false, Some(&guard))?;
        drop(scan);
        outcome
    };
    tracer.set_scope(query);
    tracer.end(rank_span);
    let phase_initial_rank = start.elapsed();
    let initial_rank = match outcome {
        SetRankOutcome::Exact { rank } => rank,
        _ => {
            let reason = guard.breached().expect("scan only stops early on breach");
            let stats = AlgoStats {
                wall: start.elapsed(),
                io: tree.pool().stats().since(&io_before).physical_reads,
                phase_initial_rank,
                ..AlgoStats::default()
            };
            return degraded_fallback(dataset, question, None, None, reason, &opts.budget, stats);
        }
    };
    // The fuzz harness's deliberately injected off-by-one (see
    // `KcrOptions::inject_rank_bug`): every downstream penalty reads the
    // perturbed Δk normaliser, so the BS oracle catches it.
    let initial_rank = if opts.inject_rank_bug {
        initial_rank + 1
    } else {
        initial_rank
    };
    tracer.event(
        "kcr.initial_rank",
        TracePayload::RankConverged {
            rank: initial_rank.min(u32::MAX as usize) as u32,
        },
    );

    let mut ctx = WhyNotContext::new(dataset, question, initial_rank)?;
    if opts.kernel == Kernel::Scalar {
        // A/B knob: dropping the kernel state sends every downstream
        // similarity and dominator bound through the merge-scan path.
        ctx.kernel = None;
    }
    let enumerator = CandidateEnumerator::new(&ctx);

    // Line 2: the basic refined query initialises the best.
    let best = SharedBest::new(ctx.baseline());
    let stats = SharedStats::default();

    // Layers are generated lazily for the full candidate space so a
    // budget breach skips the exponentially larger deep layers entirely.
    let mut phase_enumeration = Duration::ZERO;
    let mut sample_size = None;
    let ready_layers: Option<Vec<(usize, Vec<Candidate>)>> = match sample {
        None => None,
        Some(sample) => {
            sample_size = Some(sample.len());
            let t = Instant::now();
            let layers = layer_sample(sample);
            phase_enumeration += t.elapsed();
            Some(layers)
        }
    };
    let depths: Vec<usize> = match &ready_layers {
        None => (1..=enumerator.max_edit_distance()).collect(),
        Some(layers) => layers.iter().map(|&(d, _)| d).collect(),
    };
    let mut ready_layers = ready_layers.map(|l| l.into_iter());

    // Global candidate sequence numbers (baseline = 0), mirroring
    // AdvancedBS.
    let mut next_seq: u64 = 1;

    let verification_started = Instant::now();
    for d in depths {
        if guard.check().is_some() {
            break;
        }
        let layer: Vec<Candidate> = match &mut ready_layers {
            Some(iter) => iter.next().expect("depths mirror the ready layers").1,
            None => {
                let t = Instant::now();
                let layer = enumerator.layer(d, true);
                phase_enumeration += t.elapsed();
                layer
            }
        };
        // Line 4: the next batch's keyword penalty alone disqualifies
        // it. `best` is fully merged here (sequence barrier), so the
        // termination point is identical for every thread count.
        if ctx.penalty.keyword_penalty(d) >= best.penalty() {
            stats
                .pruned_by_bound
                .fetch_add(layer.len() as u64, Ordering::Relaxed);
            break;
        }
        stats
            .candidates_total
            .fetch_add(layer.len() as u64, Ordering::Relaxed);
        // One span per verification layer; worker-side events (prunes,
        // steals, pool reads) attach to it through the global scope,
        // which is only moved here, between the layer barriers.
        let layer_span = tracer.begin("kcr.layer");
        tracer.set_scope(layer_span.id());
        let base_seq = next_seq;
        next_seq += layer.len() as u64;
        // Split the layer into benefit-ordered batches, each carrying
        // the sequence number of its first candidate. The partition is
        // identical for every thread count — parallelism comes from the
        // per-node subtree tasks below, not from slicing batches thinner
        // (which would duplicate per-batch root traversals).
        let batch_size = opts.batch_size.max(1);
        let mut tasks: Vec<(u64, Vec<Candidate>)> = Vec::new();
        let mut rest = layer;
        let mut seq0 = base_seq;
        while !rest.is_empty() {
            let take = batch_size.min(rest.len());
            let tail = rest.split_off(take);
            let taken = std::mem::replace(&mut rest, tail);
            tasks.push((seq0, taken));
            seq0 += take as u64;
        }
        let locals = if exec.threads() > 1 {
            // Dynamic mode: each batch seeds a shared traversal whose
            // frontier *nodes* are independent pool tasks — one
            // expensive subtree no longer serialises its whole batch,
            // and idle workers steal node expansions mid-batch. The
            // per-candidate rank bracket lives in a packed atomic;
            // every observed state is a valid frontier, so pruning and
            // offers stay exact (see [`ParCand`]).
            exec.run_dynamic(
                tasks
                    .into_iter()
                    .map(|(seq0, batch)| KcrTask::Batch(seq0, batch))
                    .collect(),
                &metrics,
                || guard.check().is_some(),
                |_worker| LocalBest::new(),
                |local, task, tctx| match task {
                    KcrTask::Batch(seq0, batch) => {
                        launch_batch(tree, &ctx, seq0, batch, best.bound(), local, &stats, tctx)
                    }
                    KcrTask::Node(scan, node, contrib) => expand_batch_node(
                        tree,
                        &ctx,
                        &scan,
                        node,
                        &contrib,
                        best.bound(),
                        local,
                        &stats,
                        tctx,
                    ),
                },
            )?
        } else {
            exec.run(
                tasks,
                &metrics,
                || guard.check().is_some(),
                |_worker| LocalBest::new(),
                |local, (seq0, batch), handle| {
                    // Batches run in rough benefit order pool-wide; a later
                    // batch whose whole layer is already beaten is pruned by
                    // the root bounds almost immediately.
                    bound_and_prune(
                        tree,
                        &ctx,
                        &batch,
                        seq0,
                        best.bound(),
                        local,
                        &stats,
                        &guard,
                        handle,
                    )
                },
            )?
        };
        // Sequence barrier: merge per-worker bests deterministically.
        for local in locals {
            best.merge(local);
        }
        tracer.set_scope(query);
        tracer.end(layer_span);
        if guard.breached().is_some() {
            break;
        }
    }

    let refined = best.into_inner();
    let totals = metrics.totals();
    let stats = AlgoStats {
        wall: start.elapsed(),
        io: tree.pool().stats().since(&io_before).physical_reads,
        candidates_total: stats.candidates_total.into_inner(),
        pruned_by_bound: stats.pruned_by_bound.into_inner(),
        nodes_expanded: stats.nodes_expanded.into_inner(),
        tasks_stolen: totals.stolen,
        bound_refreshes: totals.bound_refreshes,
        prune_hits: totals.prune_hits,
        workers: metrics.per_worker(),
        initial_rank: initial_rank as u64,
        phase_initial_rank,
        phase_enumeration,
        phase_verification: verification_started.elapsed(),
        task_latency: task_hist.snapshot(),
        ..AlgoStats::default()
    };
    if let Some(reason) = guard.breached() {
        return degraded_fallback(
            dataset,
            question,
            Some(initial_rank),
            Some(refined),
            reason,
            &opts.budget,
            stats,
        );
    }
    let quality = match sample_size {
        Some(sample_size) => AnswerQuality::Approximate { sample_size },
        None => AnswerQuality::Exact,
    };
    Ok(WhyNotAnswer {
        refined,
        stats,
        quality,
    })
}

/// Per-candidate traversal state.
struct CandState {
    doc: KeywordSet,
    /// `doc` projected onto the question universe (bitset kernel only;
    /// candidates are subsets of the universe, so this is lossless).
    bits: Option<ProjectedSet>,
    edit_distance: usize,
    /// Global candidate sequence number (lexicographic merge tiebreak).
    seq: u64,
    /// `TSim(m_i, S)` per missing object.
    m_tsims: Vec<f64>,
    /// `ST(m_i, q_S)` per missing object (for exact leaf dominance).
    m_scores: Vec<f64>,
    rank_hi: i64,
    rank_lo: i64,
    active: bool,
}

/// Builds a [`PreparedNode`] matching the context's kernel: with the
/// packed per-slot counts when the bitset kernel is active.
fn prepare_node(summary: &NodeSummary, ctx: &WhyNotContext<'_>) -> PreparedNode {
    match ctx.kernel.as_ref() {
        Some(k) => PreparedNode::with_projection(summary, k.universe()),
        None => PreparedNode::new(summary),
    }
}

struct QueuedNode {
    node: BlobRef,
    /// Per-candidate `(MaxDom, MinDom)` contribution of this node to the
    /// frontier sums.
    contrib: Vec<(u32, u32)>,
}

/// Algorithm 3: finds the best refined query among `candidates` in one
/// KcR-tree traversal, folding improvements into the worker's local
/// best and publishing achieved penalties into the shared bound.
/// `seq0` is the global sequence number of `candidates[0]` (the batch
/// is contiguous in enumeration order).
#[allow(clippy::too_many_arguments)]
fn bound_and_prune(
    tree: &KcrTree,
    ctx: &WhyNotContext<'_>,
    candidates: &[Candidate],
    seq0: u64,
    bound: &SharedBound,
    local: &mut LocalBest,
    stats: &SharedStats,
    guard: &BudgetGuard,
    handle: &WorkerHandle<'_>,
) -> Result<()> {
    if candidates.is_empty() {
        return Ok(());
    }
    let alpha = ctx.query.alpha;
    let world = tree.world();

    let mut cands: Vec<CandState> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let m_tsims: Vec<f64> = ctx
                .missing
                .iter()
                .map(|m| ctx.query.sim.similarity(&m.doc, &c.doc))
                .collect();
            let m_scores: Vec<f64> = ctx
                .missing
                .iter()
                .zip(&m_tsims)
                .map(|(m, &tsim)| st_score(alpha, m.sdist, tsim))
                .collect();
            CandState {
                bits: ctx.kernel.as_ref().map(|k| k.project(&c.doc)),
                doc: c.doc.clone(),
                edit_distance: c.edit_distance,
                seq: seq0 + i as u64,
                m_tsims,
                m_scores,
                rank_hi: 1,
                rank_lo: 1,
                active: true,
            }
        })
        .collect();

    // Lines 2–6: initial bounds from the root summary.
    let root_summary = tree.root_summary().map_err(crate::WhyNotError::Storage)?;
    let root_contrib = node_contrib(&root_summary, ctx, &mut cands, world);
    for (cand, &(hi, lo)) in cands.iter_mut().zip(&root_contrib) {
        cand.rank_hi += hi as i64;
        cand.rank_lo += lo as i64;
    }
    let traversal = tree.traversal();
    refresh_candidates(ctx, &mut cands, bound, local, stats, traversal, handle);
    if !cands.iter().any(|c| c.active) {
        return Ok(());
    }

    let mut queue: VecDeque<QueuedNode> = VecDeque::new();
    queue.push_back(QueuedNode {
        node: tree.root(),
        contrib: root_contrib,
    });

    // Lines 8–32: traverse, tightening the frontier sums.
    while let Some(qn) = queue.pop_front() {
        // Cooperative checkpoint: each pop costs at least one page read,
        // so checking per pop keeps overhead negligible. The best found
        // so far stays valid (rank_hi penalties are achievable).
        if guard.check().is_some() {
            return Ok(());
        }
        if !cands.iter().any(|c| c.active) {
            // Every candidate retired: nothing enqueued will be visited.
            traversal.nodes_pruned.add(queue.len() as u64 + 1);
            return Ok(());
        }
        let node = tree
            .read_node(qn.node)
            .map_err(crate::WhyNotError::Storage)?;
        stats.nodes_expanded.fetch_add(1, Ordering::Relaxed);

        // Gather each child's per-candidate contribution.
        let mut child_nodes: Vec<(BlobRef, Vec<(u32, u32)>)> = Vec::new();
        let mut sums: Vec<(i64, i64)> = vec![(0, 0); cands.len()];
        match node {
            KcrNode::Internal(entries) => {
                for e in &entries {
                    let summary = NodeSummary {
                        mbr: e.mbr,
                        cnt: e.cnt,
                        kcm: tree.read_kcm(e.kcm).map_err(crate::WhyNotError::Storage)?,
                    };
                    let contrib = node_contrib(&summary, ctx, &mut cands, world);
                    for (i, &(hi, lo)) in contrib.iter().enumerate() {
                        sums[i].0 += hi as i64;
                        sums[i].1 += lo as i64;
                    }
                    // Line 29–32: only children whose bounds are still
                    // loose for some active candidate can tighten anything.
                    let loose = cands
                        .iter()
                        .zip(&contrib)
                        .any(|(c, &(hi, lo))| c.active && hi != lo);
                    if loose {
                        child_nodes.push((e.child, contrib));
                    } else {
                        // The dominance bounds agree for every active
                        // candidate: this subtree can never tighten the
                        // frontier sums, so it is pruned unvisited.
                        traversal.nodes_pruned_traced(e.child.first_page.0, 0);
                    }
                }
            }
            KcrNode::Leaf(entries) => {
                for e in &entries {
                    let doc = tree.read_doc(e.doc).map_err(crate::WhyNotError::Storage)?;
                    // Bitset kernel: project the document once, then each
                    // candidate similarity is AND + popcount.
                    let doc_bits = ctx.kernel.as_ref().map(|k| k.project(&doc));
                    let sdist = world.normalized_dist(&e.loc, &ctx.query.loc);
                    for (i, cand) in cands.iter().enumerate() {
                        if !cand.active {
                            continue;
                        }
                        let tsim = match (&doc_bits, &cand.bits) {
                            (Some(db), Some(cb)) => ctx.query.sim.similarity_bits(db, cb),
                            _ => ctx.query.sim.similarity(&doc, &cand.doc),
                        };
                        let score = st_score(alpha, sdist, tsim);
                        // max_i / min_i of per-missing dominance flags.
                        let (any, all) = leaf_dominance(score, &cand.m_scores);
                        sums[i].0 += any as i64;
                        sums[i].1 += all as i64;
                    }
                }
            }
        }

        // Lines 18–19: replace this node's contribution by its children's.
        for (i, cand) in cands.iter_mut().enumerate() {
            if !cand.active {
                continue;
            }
            cand.rank_hi += sums[i].0 - qn.contrib[i].0 as i64;
            cand.rank_lo += sums[i].1 - qn.contrib[i].1 as i64;
            debug_assert!(cand.rank_lo >= 1 && cand.rank_hi >= cand.rank_lo);
        }
        refresh_candidates(ctx, &mut cands, bound, local, stats, traversal, handle);

        for (node, contrib) in child_nodes {
            queue.push_back(QueuedNode { node, contrib });
        }
    }
    Ok(())
}

/// `(MaxDom, MinDom)` of one prepared node summary for one candidate,
/// maximised/minimised over the missing objects (§VI-A).
///
/// The candidate's term profile is built once — by the bitset gather
/// when `bits` is present, by the scalar merge otherwise — and shared
/// across every missing object's `max_dom`/`min_dom` threshold. Both
/// constructions produce the same [`wnsk_index::kcr::SCounts`], so the
/// bounds (and hence every work metric) are bit-identical by kernel.
#[allow(clippy::too_many_arguments)]
fn entry_dom_bounds(
    prep: &PreparedNode,
    min_dist: f64,
    max_dist: f64,
    ctx: &WhyNotContext<'_>,
    doc: &KeywordSet,
    bits: Option<&ProjectedSet>,
    m_tsims: &[f64],
) -> (u32, u32) {
    let sc = match bits {
        Some(b) => prep.profile_bits(b),
        None => prep.profile(doc),
    };
    let alpha = ctx.query.alpha;
    let mut hi = 0u32;
    let mut lo = u32::MAX;
    for (m, &tsim) in ctx.missing.iter().zip(m_tsims) {
        let tl = tau_lower(alpha, min_dist, m.sdist, tsim);
        let tu = tau_upper(alpha, max_dist, m.sdist, tsim);
        hi = hi.max(max_dom_counts(prep, &sc, tl, ctx.query.sim));
        lo = lo.min(min_dom_counts(prep, &sc, tu, ctx.query.sim));
    }
    (hi, lo)
}

/// Per-missing-object strict dominance of one leaf object's exact score:
/// `(any, all)` feed the MaxDom/MinDom sums respectively.
fn leaf_dominance(score: f64, m_scores: &[f64]) -> (bool, bool) {
    let mut any = false;
    let mut all = true;
    for &m_score in m_scores {
        if score > m_score {
            any = true;
        } else {
            all = false;
        }
    }
    (any, all)
}

/// Computes the per-candidate `(MaxDom, MinDom)` of one node summary,
/// maximised/minimised over the missing objects (§VI-A).
fn node_contrib(
    summary: &NodeSummary,
    ctx: &WhyNotContext<'_>,
    cands: &mut [CandState],
    world: &wnsk_geo::WorldBounds,
) -> Vec<(u32, u32)> {
    let prep = prepare_node(summary, ctx);
    let min_dist = world.normalized_min_dist(&ctx.query.loc, &summary.mbr);
    let max_dist = world.normalized_max_dist(&ctx.query.loc, &summary.mbr);
    cands
        .iter()
        .map(|cand| {
            if !cand.active {
                return (0, 0);
            }
            entry_dom_bounds(
                &prep,
                min_dist,
                max_dist,
                ctx,
                &cand.doc,
                cand.bits.as_ref(),
                &cand.m_tsims,
            )
        })
        .collect()
}

/// Lines 20–26: recompute penalty bounds, improve the worker's local
/// best with the (always achievable) upper bound, prune candidates
/// whose lower bound already exceeds the shared bound.
#[allow(clippy::too_many_arguments)]
fn refresh_candidates(
    ctx: &WhyNotContext<'_>,
    cands: &mut [CandState],
    bound: &SharedBound,
    local: &mut LocalBest,
    stats: &SharedStats,
    traversal: &wnsk_index::TraversalStats,
    handle: &WorkerHandle<'_>,
) {
    for cand in cands.iter_mut() {
        if !cand.active {
            continue;
        }
        let rank_hi = cand.rank_hi as usize;
        let rank_lo = cand.rank_lo as usize;
        let pn_hi = ctx.penalty.penalty(cand.edit_distance, rank_hi);
        let pn_lo = ctx.penalty.penalty(cand.edit_distance, rank_lo);
        // The refined query (S, max(k₀, rank_hi)) certainly contains M,
        // so pn_hi is achievable: offer it to the worker-local best and,
        // on improvement, publish the penalty into the lock-free shared
        // bound so sibling workers prune against it mid-layer.
        let key = BestKey::new(pn_hi, cand.seq, rank_hi);
        let improved = local.improve_with(key, || {
            BestEntry::new(
                RefinedQuery {
                    doc: cand.doc.clone(),
                    k: ctx.refined_k(rank_hi),
                    rank: rank_hi,
                    edit_distance: cand.edit_distance,
                    penalty: pn_hi,
                },
                cand.seq,
            )
        });
        if improved && bound.refresh(pn_hi) {
            handle.count_bound_refresh();
        }
        if pn_lo > bound.value() {
            // Theorem 3: the MinDom-derived penalty lower bound already
            // exceeds the best refined query. Strict comparison, so the
            // globally minimal candidate can never be pruned — the basis
            // of the thread-count determinism argument.
            cand.active = false;
            stats.pruned_by_bound.fetch_add(1, Ordering::Relaxed);
            traversal.prune_mindom_traced(rank_lo.min(u32::MAX as usize) as u32);
            handle.count_prune_hit();
        } else if cand.rank_hi == cand.rank_lo {
            // Fully converged: the frontier sums can never change again
            // (every per-node contribution gap is zero), and the exact
            // penalty has just been offered to the local best — retire
            // the candidate so deeper nodes stop paying for it.
            // Theorem 2's MaxDom bound closed the gap without
            // object-level access.
            cand.active = false;
            traversal.prune_maxdom_traced(
                0,
                rank_hi.min(u32::MAX as usize) as u32,
                rank_lo.min(u32::MAX as usize) as u32,
                cand.edit_distance as u32,
            );
        }
    }
}

// ---------------------------------------------------------------------
// Dynamic (threads > 1) batch traversal: frontier nodes as pool tasks.
// ---------------------------------------------------------------------

/// One candidate of a parallel batch traversal. The rank bracket lives
/// in one packed atomic — `(rank_hi << 32) | rank_lo` — so a node task
/// replaces a node's contribution by its children's with a *single*
/// `fetch_add` and both fields move together.
///
/// Why every observed value is trustworthy: a child's delta is only
/// applied after its parent's (tasks apply their delta *before*
/// spawning children, and a same-atomic happens-before edge orders the
/// two `fetch_add`s), so every prefix of the atomic's coherence order
/// is a prefix-closed set of expansions — i.e. the sums of a *valid
/// frontier*. A frontier partitions the objects, so its `hi` sum is ≥
/// the exact dominator count and its `lo` sum is ≤ it; both fields stay
/// in `u32` range, which also means the packed mod-2⁶⁴ arithmetic never
/// corrupts across the field boundary. Hence: every offered `pn_hi` is
/// achievable, every prune (`pn_lo > bound`) is sound, and a transient
/// `hi == lo` *is* the exact rank (per-node `hi ≥ lo`, so equal sums
/// force every frontier node exact — retiring there is Theorem 2).
struct ParCand {
    doc: KeywordSet,
    /// `doc` projected onto the question universe (bitset kernel only).
    bits: Option<ProjectedSet>,
    edit_distance: usize,
    /// Global candidate sequence number (lexicographic merge tiebreak).
    seq: u64,
    /// `TSim(m_i, S)` per missing object.
    m_tsims: Vec<f64>,
    /// `ST(m_i, q_S)` per missing object (for exact leaf dominance).
    m_scores: Vec<f64>,
    /// Packed `(rank_hi << 32) | rank_lo`, both including the `1 +`.
    bounds: AtomicU64,
    active: AtomicBool,
}

/// The shared state of one batch's traversal; node tasks hold it by
/// [`Arc`] and apply their bound deltas concurrently.
struct BatchScan {
    cands: Vec<ParCand>,
}

/// A task of the dynamic KcR layer execution: a whole candidate batch
/// (roots its traversal) or one frontier node of an in-flight batch,
/// carrying that node's per-candidate `(MaxDom, MinDom)` contribution.
enum KcrTask {
    Batch(u64, Vec<Candidate>),
    Node(Arc<BatchScan>, BlobRef, Vec<(u32, u32)>),
}

fn pack_bounds(hi: u32, lo: u32) -> u64 {
    ((hi as u64) << 32) | lo as u64
}

fn pack_delta(dhi: i64, dlo: i64) -> u64 {
    (dhi << 32).wrapping_add(dlo) as u64
}

/// The parallel counterpart of one candidate's slice of
/// [`refresh_candidates`], fed the post-delta packed value the caller
/// computed from its own `fetch_add` return.
#[allow(clippy::too_many_arguments)]
fn refresh_one(
    ctx: &WhyNotContext<'_>,
    cand: &ParCand,
    hi: u32,
    lo: u32,
    bound: &SharedBound,
    local: &mut LocalBest,
    stats: &SharedStats,
    traversal: &wnsk_index::TraversalStats,
    handle: &WorkerHandle<'_>,
) {
    if !cand.active.load(Ordering::Acquire) {
        return;
    }
    let rank_hi = hi as usize;
    let rank_lo = lo as usize;
    let pn_hi = ctx.penalty.penalty(cand.edit_distance, rank_hi);
    let pn_lo = ctx.penalty.penalty(cand.edit_distance, rank_lo);
    let key = BestKey::new(pn_hi, cand.seq, rank_hi);
    let improved = local.improve_with(key, || {
        BestEntry::new(
            RefinedQuery {
                doc: cand.doc.clone(),
                k: ctx.refined_k(rank_hi),
                rank: rank_hi,
                edit_distance: cand.edit_distance,
                penalty: pn_hi,
            },
            cand.seq,
        )
    });
    if improved && bound.refresh(pn_hi) {
        handle.count_bound_refresh();
    }
    if pn_lo > bound.value() {
        // Theorem 3 (strict, so the minimal candidate never prunes);
        // `swap` so concurrent tasks book the retirement exactly once.
        if cand.active.swap(false, Ordering::AcqRel) {
            stats.pruned_by_bound.fetch_add(1, Ordering::Relaxed);
            traversal.prune_mindom_traced(lo);
            handle.count_prune_hit();
        }
    } else if hi == lo {
        // Theorem 2: the bracket closed — `pn_hi` just offered is exact.
        if cand.active.swap(false, Ordering::AcqRel) {
            traversal.prune_maxdom_traced(0, hi, lo, cand.edit_distance as u32);
        }
    }
}

/// Dynamic-mode batch seed: builds the shared candidate states, applies
/// the root-summary bounds (Algorithm 3 lines 2–6) and hands the root
/// node to the pool as the traversal's first frontier task.
#[allow(clippy::too_many_arguments)]
fn launch_batch(
    tree: &KcrTree,
    ctx: &WhyNotContext<'_>,
    seq0: u64,
    batch: Vec<Candidate>,
    bound: &SharedBound,
    local: &mut LocalBest,
    stats: &SharedStats,
    tctx: &TaskContext<'_, KcrTask>,
) -> Result<()> {
    if batch.is_empty() {
        return Ok(());
    }
    let alpha = ctx.query.alpha;
    let world = tree.world();
    let cands: Vec<ParCand> = batch
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let m_tsims: Vec<f64> = ctx
                .missing
                .iter()
                .map(|m| ctx.query.sim.similarity(&m.doc, &c.doc))
                .collect();
            let m_scores: Vec<f64> = ctx
                .missing
                .iter()
                .zip(&m_tsims)
                .map(|(m, &tsim)| st_score(alpha, m.sdist, tsim))
                .collect();
            ParCand {
                bits: ctx.kernel.as_ref().map(|k| k.project(&c.doc)),
                doc: c.doc.clone(),
                edit_distance: c.edit_distance,
                seq: seq0 + i as u64,
                m_tsims,
                m_scores,
                bounds: AtomicU64::new(pack_bounds(1, 1)),
                active: AtomicBool::new(true),
            }
        })
        .collect();
    let scan = Arc::new(BatchScan { cands });

    let root_summary = tree.root_summary().map_err(crate::WhyNotError::Storage)?;
    let prep = prepare_node(&root_summary, ctx);
    let min_dist = world.normalized_min_dist(&ctx.query.loc, &root_summary.mbr);
    let max_dist = world.normalized_max_dist(&ctx.query.loc, &root_summary.mbr);
    let traversal = tree.traversal();
    let mut root_contrib = Vec::with_capacity(scan.cands.len());
    for cand in &scan.cands {
        let (hi, lo) = entry_dom_bounds(
            &prep,
            min_dist,
            max_dist,
            ctx,
            &cand.doc,
            cand.bits.as_ref(),
            &cand.m_tsims,
        );
        let delta = pack_delta(hi as i64, lo as i64);
        let new = cand
            .bounds
            .fetch_add(delta, Ordering::AcqRel)
            .wrapping_add(delta);
        refresh_one(
            ctx,
            cand,
            (new >> 32) as u32,
            new as u32,
            bound,
            local,
            stats,
            traversal,
            &tctx.handle,
        );
        root_contrib.push((hi, lo));
    }
    // An active candidate always has a loose bracket (refresh retires
    // `hi == lo`), so any survivor justifies expanding the root.
    if scan.cands.iter().any(|c| c.active.load(Ordering::Acquire)) {
        tctx.spawn(KcrTask::Node(scan, tree.root(), root_contrib));
    } else {
        traversal.nodes_pruned_traced(tree.root().first_page.0, 0);
    }
    Ok(())
}

/// Dynamic-mode frontier step (Algorithm 3 lines 8–32 for one node):
/// replaces this node's per-candidate contribution by its children's —
/// one packed `fetch_add` per candidate, applied *before* any child is
/// spawned so coherence order respects tree order (see [`ParCand`]) —
/// and forks the still-loose children as new pool tasks.
#[allow(clippy::too_many_arguments)]
fn expand_batch_node(
    tree: &KcrTree,
    ctx: &WhyNotContext<'_>,
    scan: &Arc<BatchScan>,
    node_ref: BlobRef,
    contrib: &[(u32, u32)],
    bound: &SharedBound,
    local: &mut LocalBest,
    stats: &SharedStats,
    tctx: &TaskContext<'_, KcrTask>,
) -> Result<()> {
    let traversal = tree.traversal();
    // Snapshot: a candidate retired after this never receives another
    // delta from this task's subtree (its bracket is already final or
    // its penalty already beaten — either way its bounds are dead).
    let actives: Vec<bool> = scan
        .cands
        .iter()
        .map(|c| c.active.load(Ordering::Acquire))
        .collect();
    if !actives.iter().any(|&a| a) {
        traversal.nodes_pruned_traced(node_ref.first_page.0, 0);
        return Ok(());
    }
    let node = tree
        .read_node(node_ref)
        .map_err(crate::WhyNotError::Storage)?;
    stats.nodes_expanded.fetch_add(1, Ordering::Relaxed);
    let alpha = ctx.query.alpha;
    let world = tree.world();

    let mut child_nodes: Vec<(BlobRef, Vec<(u32, u32)>)> = Vec::new();
    let mut sums: Vec<(i64, i64)> = vec![(0, 0); scan.cands.len()];
    match node {
        KcrNode::Internal(entries) => {
            for e in &entries {
                let summary = NodeSummary {
                    mbr: e.mbr,
                    cnt: e.cnt,
                    kcm: tree.read_kcm(e.kcm).map_err(crate::WhyNotError::Storage)?,
                };
                let prep = prepare_node(&summary, ctx);
                let min_dist = world.normalized_min_dist(&ctx.query.loc, &summary.mbr);
                let max_dist = world.normalized_max_dist(&ctx.query.loc, &summary.mbr);
                let child_contrib: Vec<(u32, u32)> = scan
                    .cands
                    .iter()
                    .zip(&actives)
                    .map(|(cand, &a)| {
                        if !a {
                            return (0, 0);
                        }
                        entry_dom_bounds(
                            &prep,
                            min_dist,
                            max_dist,
                            ctx,
                            &cand.doc,
                            cand.bits.as_ref(),
                            &cand.m_tsims,
                        )
                    })
                    .collect();
                for (i, &(hi, lo)) in child_contrib.iter().enumerate() {
                    sums[i].0 += hi as i64;
                    sums[i].1 += lo as i64;
                }
                let loose = actives
                    .iter()
                    .zip(&child_contrib)
                    .any(|(&a, &(hi, lo))| a && hi != lo);
                if loose {
                    child_nodes.push((e.child, child_contrib));
                } else {
                    traversal.nodes_pruned_traced(e.child.first_page.0, 0);
                }
            }
        }
        KcrNode::Leaf(entries) => {
            for e in &entries {
                let doc = tree.read_doc(e.doc).map_err(crate::WhyNotError::Storage)?;
                let doc_bits = ctx.kernel.as_ref().map(|k| k.project(&doc));
                let sdist = world.normalized_dist(&e.loc, &ctx.query.loc);
                for (i, cand) in scan.cands.iter().enumerate() {
                    if !actives[i] {
                        continue;
                    }
                    let tsim = match (&doc_bits, &cand.bits) {
                        (Some(db), Some(cb)) => ctx.query.sim.similarity_bits(db, cb),
                        _ => ctx.query.sim.similarity(&doc, &cand.doc),
                    };
                    let score = st_score(alpha, sdist, tsim);
                    let (any, all) = leaf_dominance(score, &cand.m_scores);
                    sums[i].0 += any as i64;
                    sums[i].1 += all as i64;
                }
            }
        }
    }

    // Apply every delta before spawning any child — load-bearing for
    // the valid-frontier invariant (see [`ParCand`]).
    for (i, cand) in scan.cands.iter().enumerate() {
        if !actives[i] {
            continue;
        }
        let delta = pack_delta(
            sums[i].0 - contrib[i].0 as i64,
            sums[i].1 - contrib[i].1 as i64,
        );
        let new = cand
            .bounds
            .fetch_add(delta, Ordering::AcqRel)
            .wrapping_add(delta);
        refresh_one(
            ctx,
            cand,
            (new >> 32) as u32,
            new as u32,
            bound,
            local,
            stats,
            traversal,
            &tctx.handle,
        );
    }
    for (child, child_contrib) in child_nodes {
        tctx.spawn(KcrTask::Node(Arc::clone(scan), child, child_contrib));
    }
    Ok(())
}
