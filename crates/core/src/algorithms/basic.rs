//! The basic algorithm **BS** (§IV-B) and its optimised variant
//! **AdvancedBS** (§IV-C, Algorithm 1).
//!
//! BS executes one spatial keyword query over the SetR-tree per candidate
//! keyword set, scanning each until every missing object has been
//! retrieved, and keeps the candidate with the smallest penalty.
//! AdvancedBS adds four independently toggleable optimisations:
//!
//! 1. **Early stop** — Eqn. 6's rank bound `R_L`: a candidate's scan
//!    aborts as soon as the missing set's rank provably exceeds what the
//!    current best penalty allows.
//! 2. **Enumeration order** — candidates are visited in increasing edit
//!    distance and, within a layer, decreasing particularity benefit; the
//!    whole search terminates once the keyword penalty of the next layer
//!    already exceeds the best penalty.
//! 3. **Keyword-set filtering** — dominators of the missing set observed
//!    in earlier scans are cached; if enough of them still dominate under
//!    the next candidate (an in-memory check), the candidate is pruned
//!    without touching the index.
//! 4. **Parallel processing** — candidates of a layer are processed by
//!    multiple threads sharing the current best penalty.

use crate::algorithms::approx::degraded_fallback;
use crate::algorithms::SharedBest;
use crate::budget::{AnswerQuality, BudgetGuard, QueryBudget};
use crate::enumeration::{Candidate, CandidateEnumerator};
use crate::error::Result;
use crate::question::{AlgoStats, RefinedQuery, WhyNotAnswer, WhyNotContext, WhyNotQuestion};
use crate::rank::{SetRankOutcome, BUDGET_CHECK_INTERVAL};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wnsk_index::{st_score, Dataset, ObjectId, SetRTree, SpatialKeywordQuery, TopKSearch};

/// Toggles for the AdvancedBS optimisations (all on by default,
/// single-threaded). `AdvancedOptions::none()` turns AdvancedBS back into
/// plain BS — the ablation experiment (Fig. 11) sweeps these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdvancedOptions {
    /// Opt1: early stop via the rank bound of Eqn. 6.
    pub early_stop: bool,
    /// Opt2: penalty/particularity enumeration order with global early
    /// termination.
    pub ordered_enumeration: bool,
    /// Opt3: dominator-cache keyword-set filtering.
    pub keyword_set_filtering: bool,
    /// Opt4: number of worker threads (1 = serial).
    pub threads: usize,
    /// Resource limits; on exhaustion the solver degrades to the
    /// in-memory approximate fallback instead of running to completion.
    pub budget: QueryBudget,
}

impl Default for AdvancedOptions {
    fn default() -> Self {
        AdvancedOptions {
            early_stop: true,
            ordered_enumeration: true,
            keyword_set_filtering: true,
            threads: 1,
            budget: QueryBudget::unlimited(),
        }
    }
}

impl AdvancedOptions {
    /// Every optimisation disabled: plain BS behaviour.
    pub fn none() -> Self {
        AdvancedOptions {
            early_stop: false,
            ordered_enumeration: false,
            keyword_set_filtering: false,
            threads: 1,
            budget: QueryBudget::unlimited(),
        }
    }
}

/// Where candidates come from: the full space or a §VI-B sample.
pub(crate) enum CandidateSource {
    Full,
    Sample(Vec<Candidate>),
}

/// Thread-shared counters.
#[derive(Default)]
struct SharedStats {
    candidates_total: AtomicU64,
    pruned_by_filter: AtomicU64,
    pruned_by_bound: AtomicU64,
    queries_run: AtomicU64,
}

impl SharedStats {
    fn into_stats(self) -> AlgoStats {
        AlgoStats {
            candidates_total: self.candidates_total.into_inner(),
            pruned_by_filter: self.pruned_by_filter.into_inner(),
            pruned_by_bound: self.pruned_by_bound.into_inner(),
            queries_run: self.queries_run.into_inner(),
            ..AlgoStats::default()
        }
    }
}

/// **BS**: the unoptimised baseline of §IV-B.
pub fn answer_basic(
    dataset: &Dataset,
    tree: &SetRTree,
    question: &WhyNotQuestion,
) -> Result<WhyNotAnswer> {
    run(
        dataset,
        tree,
        question,
        AdvancedOptions::none(),
        CandidateSource::Full,
    )
}

/// **BS** under a [`QueryBudget`]: exhausting the budget degrades to the
/// approximate fallback rather than running to completion.
pub fn answer_basic_with_budget(
    dataset: &Dataset,
    tree: &SetRTree,
    question: &WhyNotQuestion,
    budget: QueryBudget,
) -> Result<WhyNotAnswer> {
    let opts = AdvancedOptions {
        budget,
        ..AdvancedOptions::none()
    };
    run(dataset, tree, question, opts, CandidateSource::Full)
}

/// **AdvancedBS**: BS with the §IV-C optimisations per `opts`.
pub fn answer_advanced(
    dataset: &Dataset,
    tree: &SetRTree,
    question: &WhyNotQuestion,
    opts: AdvancedOptions,
) -> Result<WhyNotAnswer> {
    run(dataset, tree, question, opts, CandidateSource::Full)
}

/// An edit-distance layer that may not have been generated yet: deeper
/// layers are exponentially larger, so under a budget they are only
/// materialised when the search actually reaches them.
enum LayerSpec {
    /// Generate layer `d` from the enumerator when reached.
    Gen(usize),
    /// Already materialised (the §VI-B sample arrives pre-built).
    Ready(usize, Vec<Candidate>),
}

pub(crate) fn run(
    dataset: &Dataset,
    tree: &SetRTree,
    question: &WhyNotQuestion,
    opts: AdvancedOptions,
    source: CandidateSource,
) -> Result<WhyNotAnswer> {
    question.validate(dataset)?;
    let start = Instant::now();
    let io_before = tree.pool().stats();
    let guard = BudgetGuard::new(opts.budget, Arc::clone(tree.pool()));

    // Line 1 of Algorithm 1: determine R(M, q) by processing the initial
    // query until the missing objects appear.
    let initial_targets: Vec<(ObjectId, f64)> = question
        .missing
        .iter()
        .map(|&id| (id, dataset.score(dataset.object(id), &question.query)))
        .collect();
    let mut scan = TopKSearch::new(tree, question.query.clone());
    let outcome = crate::rank::rank_of_set(&mut scan, &initial_targets, None, true, Some(&guard))?;
    drop(scan);
    let phase_initial_rank = start.elapsed();
    let initial_rank = match outcome {
        SetRankOutcome::Exact { rank } => rank,
        _ => {
            // Budget gone before R(M, q) was known: degrade with nothing
            // but the question itself.
            let reason = guard.breached().expect("scan only stops early on breach");
            let stats = AlgoStats {
                wall: start.elapsed(),
                io: tree.pool().stats().since(&io_before).physical_reads,
                phase_initial_rank,
                ..AlgoStats::default()
            };
            return degraded_fallback(dataset, question, None, None, reason, &opts.budget, stats);
        }
    };

    let ctx = WhyNotContext::new(dataset, question, initial_rank)?;
    let enumerator = CandidateEnumerator::new(&ctx);

    // Line 2: initialise with the basic refined query (penalty λ).
    let best = SharedBest::new(ctx.baseline());
    let stats = SharedStats::default();

    // Group candidates into edit-distance layers (lazily for the full
    // space — a budget breach may make deeper layers unnecessary).
    let mut phase_enumeration = Duration::ZERO;
    let mut sample_size = None;
    let specs: Vec<LayerSpec> = match source {
        CandidateSource::Full => (1..=enumerator.max_edit_distance())
            .map(LayerSpec::Gen)
            .collect(),
        CandidateSource::Sample(sample) => {
            sample_size = Some(sample.len());
            let t = Instant::now();
            let layers = layer_sample(sample);
            phase_enumeration += t.elapsed();
            layers
                .into_iter()
                .map(|(d, l)| LayerSpec::Ready(d, l))
                .collect()
        }
    };

    let verification_started = Instant::now();
    'layers: for spec in specs {
        if guard.check().is_some() {
            break 'layers;
        }
        let (d, layer) = match spec {
            LayerSpec::Ready(d, layer) => (d, layer),
            LayerSpec::Gen(d) => {
                let t = Instant::now();
                let layer = enumerator.layer(d, opts.ordered_enumeration);
                phase_enumeration += t.elapsed();
                (d, layer)
            }
        };
        // Opt2 global termination: no deeper layer can beat the best.
        if opts.ordered_enumeration && ctx.penalty.keyword_penalty(d) >= best.penalty() {
            let remaining: u64 = layer.len() as u64;
            stats
                .pruned_by_bound
                .fetch_add(remaining, Ordering::Relaxed);
            break 'layers;
        }
        if opts.threads <= 1 {
            let mut cache = HashSet::new();
            for cand in &layer {
                if guard.check().is_some() {
                    break 'layers;
                }
                process_candidate(tree, &ctx, &opts, cand, &best, &stats, &mut cache, &guard)?;
            }
        } else {
            crossbeam::thread::scope(|scope| -> Result<()> {
                let mut handles = Vec::new();
                for t in 0..opts.threads {
                    let layer = &layer;
                    let ctx = &ctx;
                    let best = &best;
                    let stats = &stats;
                    let opts = &opts;
                    let guard = &guard;
                    handles.push(scope.spawn(move |_| -> Result<()> {
                        let mut cache = HashSet::new();
                        let mut i = t;
                        while i < layer.len() {
                            if guard.check().is_some() {
                                return Ok(());
                            }
                            process_candidate(
                                tree, ctx, opts, &layer[i], best, stats, &mut cache, guard,
                            )?;
                            i += opts.threads;
                        }
                        Ok(())
                    }));
                }
                for h in handles {
                    h.join().expect("worker thread panicked")?;
                }
                Ok(())
            })
            .expect("thread scope failed")?;
            if guard.breached().is_some() {
                break 'layers;
            }
        }
    }

    let refined = best.into_inner();
    let mut stats = stats.into_stats();
    stats.wall = start.elapsed();
    stats.io = tree.pool().stats().since(&io_before).physical_reads;
    stats.phase_initial_rank = phase_initial_rank;
    stats.phase_enumeration = phase_enumeration;
    stats.phase_verification = verification_started.elapsed();
    if let Some(reason) = guard.breached() {
        return degraded_fallback(
            dataset,
            question,
            Some(initial_rank),
            Some(refined),
            reason,
            &opts.budget,
            stats,
        );
    }
    let quality = match sample_size {
        Some(sample_size) => AnswerQuality::Approximate { sample_size },
        None => AnswerQuality::Exact,
    };
    Ok(WhyNotAnswer {
        refined,
        stats,
        quality,
    })
}

/// Groups a benefit-ordered sample into ascending edit-distance layers,
/// preserving the benefit order inside each layer.
pub(crate) fn layer_sample(sample: Vec<Candidate>) -> Vec<(usize, Vec<Candidate>)> {
    let mut by_d: std::collections::BTreeMap<usize, Vec<Candidate>> =
        std::collections::BTreeMap::new();
    for c in sample {
        by_d.entry(c.edit_distance).or_default().push(c);
    }
    by_d.into_iter().collect()
}

#[allow(clippy::too_many_arguments)]
fn process_candidate(
    tree: &SetRTree,
    ctx: &WhyNotContext<'_>,
    opts: &AdvancedOptions,
    cand: &Candidate,
    best: &SharedBest,
    stats: &SharedStats,
    dominator_cache: &mut HashSet<ObjectId>,
    guard: &BudgetGuard,
) -> Result<()> {
    stats.candidates_total.fetch_add(1, Ordering::Relaxed);
    let d = cand.edit_distance;
    let p_c = best.penalty();

    // Opt1: rank budget from Eqn. 6. Without early stop the scan runs to
    // completion regardless.
    let max_rank = if opts.early_stop {
        match ctx.penalty.rank_upper_limit(d, p_c) {
            None => {
                stats.pruned_by_bound.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            Some(usize::MAX) => None,
            Some(r) => Some(r),
        }
    } else {
        None
    };

    let targets = ctx.missing_targets(&cand.doc);
    let min_score = targets
        .iter()
        .map(|&(_, s)| s)
        .fold(f64::INFINITY, f64::min);
    let q_s: SpatialKeywordQuery = ctx.query.with_doc(cand.doc.clone());

    // Opt3: count cached dominators that still dominate (an in-memory
    // test, Algorithm 1 lines 9–13).
    if opts.keyword_set_filtering {
        if let Some(max_rank) = max_rank {
            let still_dominating = dominator_cache
                .iter()
                .filter(|&&id| {
                    let o = ctx.dataset.object(id);
                    let score = st_score(
                        q_s.alpha,
                        ctx.dataset.world().normalized_dist(&o.loc, &q_s.loc),
                        q_s.sim.similarity(&o.doc, &q_s.doc),
                    );
                    score > min_score
                })
                .count();
            if still_dominating + 1 > max_rank {
                stats.pruned_by_filter.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
        }
    }

    // Run the spatial keyword query (Algorithm 1 line 14).
    stats.queries_run.fetch_add(1, Ordering::Relaxed);
    let outcome = scan_rank(
        tree,
        &q_s,
        &targets,
        max_rank,
        // BS retrieves until the missing objects appear; the optimised
        // variant stops as soon as the rank is known.
        !opts.early_stop,
        opts.keyword_set_filtering.then_some(dominator_cache),
        guard,
    )?;

    match outcome {
        // The outer loop sees the latched breach and degrades; this
        // candidate's partial scan is simply discarded.
        SetRankOutcome::Breached { .. } => {}
        SetRankOutcome::Aborted { .. } => {
            stats.pruned_by_bound.fetch_add(1, Ordering::Relaxed);
        }
        SetRankOutcome::Exact { rank } => {
            let penalty = ctx.penalty.penalty(d, rank);
            best.improve(RefinedQuery {
                doc: cand.doc.clone(),
                k: ctx.refined_k(rank),
                rank,
                edit_distance: d,
                penalty,
            });
        }
    }
    Ok(())
}

/// A rank-of-set scan that optionally records the dominators it sees for
/// the Opt3 cache.
#[allow(clippy::too_many_arguments)]
fn scan_rank(
    tree: &SetRTree,
    q_s: &SpatialKeywordQuery,
    targets: &[(ObjectId, f64)],
    max_rank: Option<usize>,
    until_found: bool,
    mut collect: Option<&mut HashSet<ObjectId>>,
    guard: &BudgetGuard,
) -> Result<SetRankOutcome> {
    let min_score = targets
        .iter()
        .map(|&(_, s)| s)
        .fold(f64::INFINITY, f64::min);
    let mut remaining: Vec<ObjectId> = targets.iter().map(|&(id, _)| id).collect();
    let mut search = TopKSearch::new(tree, q_s.clone());
    let mut dominators = 0usize;
    let mut pulls = 0usize;
    loop {
        if pulls.is_multiple_of(BUDGET_CHECK_INTERVAL) {
            if let Some(reason) = guard.check() {
                return Ok(SetRankOutcome::Breached { reason });
            }
        }
        pulls += 1;
        if let Some(max_rank) = max_rank {
            if dominators + 1 > max_rank {
                return Ok(SetRankOutcome::Aborted {
                    seen_dominators: dominators,
                });
            }
        }
        match search.next_object().map_err(crate::WhyNotError::Storage)? {
            None => break,
            Some((id, score)) => {
                if score > min_score {
                    dominators += 1;
                    remaining.retain(|&t| t != id);
                    if let Some(cache) = collect.as_deref_mut() {
                        cache.insert(id);
                    }
                } else if until_found {
                    remaining.retain(|&t| t != id);
                    if remaining.is_empty() {
                        break;
                    }
                } else {
                    break;
                }
            }
        }
    }
    Ok(SetRankOutcome::Exact {
        rank: dominators + 1,
    })
}
