//! The basic algorithm **BS** (§IV-B) and its optimised variant
//! **AdvancedBS** (§IV-C, Algorithm 1).
//!
//! BS executes one spatial keyword query over the SetR-tree per candidate
//! keyword set, scanning each until every missing object has been
//! retrieved, and keeps the candidate with the smallest penalty.
//! AdvancedBS adds four independently toggleable optimisations:
//!
//! 1. **Early stop** — Eqn. 6's rank bound `R_L`: a candidate's scan
//!    aborts as soon as the missing set's rank provably exceeds what the
//!    current best penalty allows.
//! 2. **Enumeration order** — candidates are visited in increasing edit
//!    distance and, within a layer, decreasing particularity benefit; the
//!    whole search terminates once the keyword penalty of the next layer
//!    already exceeds the best penalty.
//! 3. **Keyword-set filtering** — dominators of the missing set observed
//!    in earlier scans are cached; if enough of them still dominate under
//!    the next candidate (an in-memory check), the candidate is pruned
//!    without touching the index.
//! 4. **Parallel processing** — candidates of a layer fan out to the
//!    [`wnsk_exec`] work-stealing pool; workers prune against the shared
//!    atomic best-penalty bound and their per-worker local bests are
//!    merged at the layer's sequence barrier (see
//!    [`crate::algorithms::shared`] for the determinism contract).

use crate::algorithms::approx::degraded_fallback;
use crate::algorithms::count;
use crate::algorithms::shared::{BestEntry, LocalBest, SharedBest};
use crate::budget::{AnswerQuality, BudgetGuard, QueryBudget};
use crate::enumeration::{Candidate, CandidateEnumerator};
use crate::error::Result;
use crate::question::{AlgoStats, RefinedQuery, WhyNotAnswer, WhyNotContext, WhyNotQuestion};
use crate::rank::{SetRankOutcome, BUDGET_CHECK_INTERVAL};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wnsk_exec::{ExecMetrics, Executor, TaskContext, WorkerHandle};
use wnsk_index::{
    st_score, Dataset, LeafSimKernel, ObjectId, SetRTree, SpatialKeywordQuery, TopKSearch,
};
use wnsk_obs::{Hist, SpanId, TracePayload, Tracer};
use wnsk_storage::BlobRef;
use wnsk_text::{Kernel, KeywordSet, ProjectedSet};

/// Toggles for the AdvancedBS optimisations (all on by default,
/// single-threaded). `AdvancedOptions::none()` turns AdvancedBS back into
/// plain BS — the ablation experiment (Fig. 11) sweeps these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdvancedOptions {
    /// Opt1: early stop via the rank bound of Eqn. 6.
    pub early_stop: bool,
    /// Opt2: penalty/particularity enumeration order with global early
    /// termination.
    pub ordered_enumeration: bool,
    /// Opt3: dominator-cache keyword-set filtering.
    pub keyword_set_filtering: bool,
    /// Opt4: number of worker threads (1 = serial).
    pub threads: usize,
    /// Set-arithmetic kernel for the Opt3 filter and counting-scan leaf
    /// similarities. Not one of the paper's optimisations — both kernels
    /// produce bit-identical answers and work metrics (see
    /// `docs/KERNELS.md`), so this is purely a wall-time A/B knob and
    /// stays at its default under `none()` too.
    pub kernel: Kernel,
    /// Resource limits; on exhaustion the solver degrades to the
    /// in-memory approximate fallback instead of running to completion.
    pub budget: QueryBudget,
}

impl Default for AdvancedOptions {
    fn default() -> Self {
        AdvancedOptions {
            early_stop: true,
            ordered_enumeration: true,
            keyword_set_filtering: true,
            threads: 1,
            kernel: Kernel::default(),
            budget: QueryBudget::unlimited(),
        }
    }
}

impl AdvancedOptions {
    /// Every optimisation disabled: plain BS behaviour.
    pub fn none() -> Self {
        AdvancedOptions {
            early_stop: false,
            ordered_enumeration: false,
            keyword_set_filtering: false,
            threads: 1,
            kernel: Kernel::default(),
            budget: QueryBudget::unlimited(),
        }
    }
}

/// Where candidates come from: the full space or a §VI-B sample.
pub(crate) enum CandidateSource {
    Full,
    Sample(Vec<Candidate>),
}

/// Thread-shared counters.
#[derive(Default)]
struct SharedStats {
    candidates_total: AtomicU64,
    pruned_by_filter: AtomicU64,
    pruned_by_bound: AtomicU64,
    queries_run: AtomicU64,
}

impl SharedStats {
    fn into_stats(self) -> AlgoStats {
        AlgoStats {
            candidates_total: self.candidates_total.into_inner(),
            pruned_by_filter: self.pruned_by_filter.into_inner(),
            pruned_by_bound: self.pruned_by_bound.into_inner(),
            queries_run: self.queries_run.into_inner(),
            ..AlgoStats::default()
        }
    }
}

/// **BS**: the unoptimised baseline of §IV-B.
pub fn answer_basic(
    dataset: &Dataset,
    tree: &SetRTree,
    question: &WhyNotQuestion,
) -> Result<WhyNotAnswer> {
    run(
        dataset,
        tree,
        question,
        AdvancedOptions::none(),
        CandidateSource::Full,
    )
}

/// **BS** under a [`QueryBudget`]: exhausting the budget degrades to the
/// approximate fallback rather than running to completion.
pub fn answer_basic_with_budget(
    dataset: &Dataset,
    tree: &SetRTree,
    question: &WhyNotQuestion,
    budget: QueryBudget,
) -> Result<WhyNotAnswer> {
    let opts = AdvancedOptions {
        budget,
        ..AdvancedOptions::none()
    };
    run(dataset, tree, question, opts, CandidateSource::Full)
}

/// **AdvancedBS**: BS with the §IV-C optimisations per `opts`.
pub fn answer_advanced(
    dataset: &Dataset,
    tree: &SetRTree,
    question: &WhyNotQuestion,
    opts: AdvancedOptions,
) -> Result<WhyNotAnswer> {
    run(dataset, tree, question, opts, CandidateSource::Full)
}

/// An edit-distance layer that may not have been generated yet: deeper
/// layers are exponentially larger, so under a budget they are only
/// materialised when the search actually reaches them.
enum LayerSpec {
    /// Generate layer `d` from the enumerator when reached.
    Gen(usize),
    /// Already materialised (the §VI-B sample arrives pre-built).
    Ready(usize, Vec<Candidate>),
}

pub(crate) fn run(
    dataset: &Dataset,
    tree: &SetRTree,
    question: &WhyNotQuestion,
    opts: AdvancedOptions,
    source: CandidateSource,
) -> Result<WhyNotAnswer> {
    // Same tracing discipline as the KcR solver: the tracer lives on
    // the tree, and the query span brackets every exit path.
    let tracer = tree.traversal().tracer().clone();
    let query_span = tracer.begin("bs.query");
    tracer.set_scope(query_span.id());
    let result = run_inner(
        dataset,
        tree,
        question,
        opts,
        source,
        &tracer,
        query_span.id(),
    );
    tracer.clear_scope();
    tracer.end(query_span);
    result
}

#[allow(clippy::too_many_arguments)]
fn run_inner(
    dataset: &Dataset,
    tree: &SetRTree,
    question: &WhyNotQuestion,
    opts: AdvancedOptions,
    source: CandidateSource,
    tracer: &Tracer,
    query: SpanId,
) -> Result<WhyNotAnswer> {
    question.validate(dataset)?;
    let start = Instant::now();
    let io_before = tree.pool().stats();
    let guard = BudgetGuard::new(opts.budget, Arc::clone(tree.pool()));

    // The work-stealing pool: one per query, reused across the initial
    // rank and every layer so the per-worker counters aggregate over
    // the whole search.
    let exec = Executor::new(opts.threads);
    let mut metrics = ExecMetrics::new(exec.threads());
    metrics.set_tracer(tracer.clone());
    let task_hist = Hist::new();
    metrics.set_task_hist(task_hist.clone());

    // Line 1 of Algorithm 1: determine R(M, q) by processing the initial
    // query until the missing objects appear. With several workers the
    // scan becomes a parallel dominator count over subtree tasks — the
    // rank is identical (ties are never dominators), only the wall time
    // shrinks.
    let initial_targets: Vec<(ObjectId, f64)> = question
        .missing
        .iter()
        .map(|&id| (id, dataset.score(dataset.object(id), &question.query)))
        .collect();
    let rank_span = tracer.begin("phase.initial_rank");
    tracer.set_scope(rank_span.id());
    let outcome = if exec.threads() > 1 {
        count::parallel_rank(
            tree,
            &exec,
            &metrics,
            &question.query,
            &initial_targets,
            &guard,
        )?
    } else {
        let mut scan = TopKSearch::new(tree, question.query.clone());
        let outcome =
            crate::rank::rank_of_set(&mut scan, &initial_targets, None, true, Some(&guard))?;
        drop(scan);
        outcome
    };
    tracer.set_scope(query);
    tracer.end(rank_span);
    let phase_initial_rank = start.elapsed();
    let initial_rank = match outcome {
        SetRankOutcome::Exact { rank } => rank,
        _ => {
            // Budget gone before R(M, q) was known: degrade with nothing
            // but the question itself.
            let reason = guard.breached().expect("scan only stops early on breach");
            let stats = AlgoStats {
                wall: start.elapsed(),
                io: tree.pool().stats().since(&io_before).physical_reads,
                phase_initial_rank,
                ..AlgoStats::default()
            };
            return degraded_fallback(dataset, question, None, None, reason, &opts.budget, stats);
        }
    };

    let mut ctx = WhyNotContext::new(dataset, question, initial_rank)?;
    if opts.kernel == Kernel::Scalar {
        // A/B knob: dropping the kernel state sends every downstream
        // similarity through the merge-scan path.
        ctx.kernel = None;
    }
    let enumerator = CandidateEnumerator::new(&ctx);

    // Line 2: initialise with the basic refined query (penalty λ).
    let best = SharedBest::new(ctx.baseline());
    let stats = SharedStats::default();

    // Group candidates into edit-distance layers (lazily for the full
    // space — a budget breach may make deeper layers unnecessary).
    let mut phase_enumeration = Duration::ZERO;
    let mut sample_size = None;
    let specs: Vec<LayerSpec> = match source {
        CandidateSource::Full => (1..=enumerator.max_edit_distance())
            .map(LayerSpec::Gen)
            .collect(),
        CandidateSource::Sample(sample) => {
            sample_size = Some(sample.len());
            let t = Instant::now();
            let layers = layer_sample(sample);
            phase_enumeration += t.elapsed();
            layers
                .into_iter()
                .map(|(d, l)| LayerSpec::Ready(d, l))
                .collect()
        }
    };

    // Global candidate sequence numbers (baseline = 0): candidates are
    // numbered in canonical enumeration order across layers, giving the
    // lexicographic merge its deterministic tiebreak.
    let mut next_seq: u64 = 1;

    let verification_started = Instant::now();
    'layers: for spec in specs {
        if guard.check().is_some() {
            break 'layers;
        }
        let (d, layer) = match spec {
            LayerSpec::Ready(d, layer) => (d, layer),
            LayerSpec::Gen(d) => {
                let t = Instant::now();
                let layer = enumerator.layer(d, opts.ordered_enumeration);
                phase_enumeration += t.elapsed();
                (d, layer)
            }
        };
        // Opt2 global termination: no deeper layer can beat the best.
        // `best` is fully merged here (sequence barrier), so the check
        // is identical for every thread count.
        if opts.ordered_enumeration && ctx.penalty.keyword_penalty(d) >= best.penalty() {
            let remaining: u64 = layer.len() as u64;
            stats
                .pruned_by_bound
                .fetch_add(remaining, Ordering::Relaxed);
            break 'layers;
        }
        let layer_span = tracer.begin("bs.layer");
        tracer.set_scope(layer_span.id());
        let base_seq = next_seq;
        next_seq += layer.len() as u64;
        let tasks: Vec<(u64, Candidate)> = layer
            .into_iter()
            .enumerate()
            .map(|(i, c)| (base_seq + i as u64, c))
            .collect();
        let locals = if exec.threads() > 1 && opts.early_stop {
            // Opt1 + Opt4: candidates fan out to the pool AND each
            // surviving candidate's rank determination forks into
            // per-subtree counting tasks, so one dominant scan no
            // longer bounds the layer's critical path. Workers prune
            // against the live shared bound at every node.
            exec.run_dynamic(
                tasks
                    .into_iter()
                    .map(|(seq, c)| BsTask::Candidate(seq, c))
                    .collect(),
                &metrics,
                || guard.check().is_some(),
                |_worker| WorkerState {
                    cache: HashSet::new(),
                    proj: HashMap::new(),
                    best: LocalBest::new(),
                },
                |state, task, tctx| match task {
                    BsTask::Candidate(seq, cand) => launch_candidate(
                        tree, &ctx, &opts, &cand, seq, &best, state, &stats, &guard, tctx,
                    ),
                    BsTask::Count(cs, node) => count_step(
                        tree, &ctx, &opts, &cs, node, &best, state, &stats, &guard, tctx,
                    ),
                },
            )?
        } else {
            exec.run(
                tasks,
                &metrics,
                || guard.check().is_some(),
                |_worker| WorkerState {
                    cache: HashSet::new(),
                    proj: HashMap::new(),
                    best: LocalBest::new(),
                },
                |state, (seq, cand), handle| {
                    process_candidate(
                        tree, &ctx, &opts, &cand, seq, &best, state, &stats, &guard, handle,
                    )
                },
            )?
        };
        // Sequence barrier: fold every worker's local best into the
        // global one before the next layer's termination check.
        for state in locals {
            best.merge(state.best);
        }
        tracer.set_scope(query);
        tracer.end(layer_span);
        if guard.breached().is_some() {
            break 'layers;
        }
    }

    let refined = best.into_inner();
    let mut stats = stats.into_stats();
    let totals = metrics.totals();
    stats.tasks_stolen = totals.stolen;
    stats.bound_refreshes = totals.bound_refreshes;
    stats.prune_hits = totals.prune_hits;
    stats.workers = metrics.per_worker();
    stats.wall = start.elapsed();
    stats.io = tree.pool().stats().since(&io_before).physical_reads;
    stats.phase_initial_rank = phase_initial_rank;
    stats.phase_enumeration = phase_enumeration;
    stats.phase_verification = verification_started.elapsed();
    stats.task_latency = task_hist.snapshot();
    if let Some(reason) = guard.breached() {
        return degraded_fallback(
            dataset,
            question,
            Some(initial_rank),
            Some(refined),
            reason,
            &opts.budget,
            stats,
        );
    }
    let quality = match sample_size {
        Some(sample_size) => AnswerQuality::Approximate { sample_size },
        None => AnswerQuality::Exact,
    };
    Ok(WhyNotAnswer {
        refined,
        stats,
        quality,
    })
}

/// Groups a benefit-ordered sample into ascending edit-distance layers,
/// preserving the benefit order inside each layer.
pub(crate) fn layer_sample(sample: Vec<Candidate>) -> Vec<(usize, Vec<Candidate>)> {
    let mut by_d: std::collections::BTreeMap<usize, Vec<Candidate>> =
        std::collections::BTreeMap::new();
    for c in sample {
        by_d.entry(c.edit_distance).or_default().push(c);
    }
    by_d.into_iter().collect()
}

/// Per-worker private state: the Opt3 dominator cache and the local
/// best merged at the layer's sequence barrier.
struct WorkerState {
    cache: HashSet<ObjectId>,
    /// Memoised bitset projections of cached dominators' documents, so
    /// repeated Opt3 filter passes over the same dominator pay one merge
    /// and then AND+popcount forever after. Unused on the scalar path.
    proj: HashMap<ObjectId, ProjectedSet>,
    best: LocalBest,
}

/// Outcome of the in-memory candidate prechecks (Opt1 + Opt3).
enum Prechecked {
    /// The candidate is provably beaten: no index access needed.
    Pruned,
    /// Run the spatial keyword query with these parameters.
    Run {
        max_rank: Option<usize>,
        targets: Vec<(ObjectId, f64)>,
        min_score: f64,
        q_s: SpatialKeywordQuery,
    },
}

/// The shared in-memory prechecks of Algorithm 1 lines 5–13: the Opt1
/// rank budget (Eqn. 6) against the cross-worker bound and the Opt3
/// dominator-cache filter. Both are tie-permissive / strictly-over
/// tests, so a candidate whose exact penalty equals the final best is
/// never pruned under any thread schedule.
#[allow(clippy::too_many_arguments)]
fn precheck_candidate(
    ctx: &WhyNotContext<'_>,
    opts: &AdvancedOptions,
    cand: &Candidate,
    best: &SharedBest,
    stats: &SharedStats,
    dominator_cache: &HashSet<ObjectId>,
    proj_cache: &mut HashMap<ObjectId, ProjectedSet>,
    handle: &WorkerHandle<'_>,
) -> Prechecked {
    stats.candidates_total.fetch_add(1, Ordering::Relaxed);
    let d = cand.edit_distance;
    // The cross-worker bound: monotonically non-increasing, so a stale
    // read only makes pruning conservative, never wrong.
    let p_c = best.bound().value();

    // Opt1: rank budget from Eqn. 6. Without early stop the scan runs to
    // completion regardless. The bound is tie-permissive (a candidate
    // whose exact penalty *equals* `p_c` always completes its scan), so
    // minimal-penalty candidates survive under any thread schedule.
    let max_rank = if opts.early_stop {
        match ctx.penalty.rank_upper_limit(d, p_c) {
            None => {
                stats.pruned_by_bound.fetch_add(1, Ordering::Relaxed);
                handle.count_prune_hit();
                return Prechecked::Pruned;
            }
            Some(usize::MAX) => None,
            Some(r) => Some(r),
        }
    } else {
        None
    };

    let targets = ctx.missing_targets(&cand.doc);
    let min_score = targets
        .iter()
        .map(|&(_, s)| s)
        .fold(f64::INFINITY, f64::min);
    let q_s: SpatialKeywordQuery = ctx.query.with_doc(cand.doc.clone());

    // Opt3: count cached dominators that still dominate (an in-memory
    // test, Algorithm 1 lines 9–13).
    if opts.keyword_set_filtering {
        if let Some(max_rank) = max_rank {
            // Bitset kernel: the candidate document (a subset of the
            // question universe) projects once per precheck, each cached
            // dominator's document once per worker (memoised in
            // `proj_cache`), after which every filter test is an
            // AND+popcount instead of a sorted-merge scan. The float
            // expressions are identical, so the count — and therefore
            // the pruning decision — matches the scalar path exactly.
            let cand_bits = ctx.kernel.as_ref().map(|k| (k, k.project(&q_s.doc)));
            let still_dominating = dominator_cache
                .iter()
                .filter(|&&id| {
                    let o = ctx.dataset.object(id);
                    let tsim = match &cand_bits {
                        Some((k, cb)) => {
                            let ob = proj_cache.entry(id).or_insert_with(|| k.project(&o.doc));
                            q_s.sim.similarity_bits(ob, cb)
                        }
                        None => q_s.sim.similarity(&o.doc, &q_s.doc),
                    };
                    let score = st_score(
                        q_s.alpha,
                        ctx.dataset.world().normalized_dist(&o.loc, &q_s.loc),
                        tsim,
                    );
                    score > min_score
                })
                .count();
            if still_dominating + 1 > max_rank {
                stats.pruned_by_filter.fetch_add(1, Ordering::Relaxed);
                handle.count_prune_hit();
                return Prechecked::Pruned;
            }
        }
    }
    Prechecked::Run {
        max_rank,
        targets,
        min_score,
        q_s,
    }
}

/// Folds an exactly determined rank into the worker-local best and, on
/// improvement, publishes the penalty into the shared bound so *other*
/// workers prune mid-layer; the refined query itself only moves at the
/// sequence barrier.
#[allow(clippy::too_many_arguments)]
fn offer_exact(
    ctx: &WhyNotContext<'_>,
    doc: &KeywordSet,
    d: usize,
    seq: u64,
    rank: usize,
    best: &SharedBest,
    local: &mut LocalBest,
    handle: &WorkerHandle<'_>,
) {
    let penalty = ctx.penalty.penalty(d, rank);
    let improved = local.offer(BestEntry::new(
        RefinedQuery {
            doc: doc.clone(),
            k: ctx.refined_k(rank),
            rank,
            edit_distance: d,
            penalty,
        },
        seq,
    ));
    if improved && best.bound().refresh(penalty) {
        handle.count_bound_refresh();
    }
}

#[allow(clippy::too_many_arguments)]
fn process_candidate(
    tree: &SetRTree,
    ctx: &WhyNotContext<'_>,
    opts: &AdvancedOptions,
    cand: &Candidate,
    seq: u64,
    best: &SharedBest,
    state: &mut WorkerState,
    stats: &SharedStats,
    guard: &BudgetGuard,
    handle: &WorkerHandle<'_>,
) -> Result<()> {
    let d = cand.edit_distance;
    let (max_rank, targets, min_score, q_s) = match precheck_candidate(
        ctx,
        opts,
        cand,
        best,
        stats,
        &state.cache,
        &mut state.proj,
        handle,
    ) {
        Prechecked::Pruned => return Ok(()),
        Prechecked::Run {
            max_rank,
            targets,
            min_score,
            q_s,
        } => (max_rank, targets, min_score, q_s),
    };
    let _ = min_score;
    // Under Opt1+Opt4 the limit is re-derived from the *live* shared
    // bound at every scan checkpoint: a peer's refresh mid-scan tightens
    // this candidate's abort rank, which is what makes concurrent scans
    // prune against each other instead of each running to the limit it
    // saw at launch. The bound only decreases, so the limit only
    // tightens — and stays tie-permissive throughout.
    let live_limit = move || ctx.penalty.rank_upper_limit(d, best.bound().value());
    let live_limit: Option<&dyn Fn() -> Option<usize>> = if opts.early_stop {
        Some(&live_limit)
    } else {
        None
    };

    // Run the spatial keyword query (Algorithm 1 line 14).
    stats.queries_run.fetch_add(1, Ordering::Relaxed);
    let outcome = scan_rank(
        tree,
        &q_s,
        &targets,
        max_rank,
        live_limit,
        // BS retrieves until the missing objects appear; the optimised
        // variant stops as soon as the rank is known.
        !opts.early_stop,
        opts.keyword_set_filtering.then_some(&mut state.cache),
        guard,
    )?;

    match outcome {
        // The outer loop sees the latched breach and degrades; this
        // candidate's partial scan is simply discarded.
        SetRankOutcome::Breached { .. } => {}
        SetRankOutcome::Aborted { seen_dominators } => {
            stats.pruned_by_bound.fetch_add(1, Ordering::Relaxed);
            handle.count_prune_hit();
            let traversal = tree.traversal();
            if traversal.tracer().is_on() {
                traversal.tracer().event(
                    "bs.candidate_rejected",
                    TracePayload::CandidateRejected {
                        rank_lower_bound: (seen_dominators + 1).min(u32::MAX as usize) as u32,
                    },
                );
            }
        }
        SetRankOutcome::Exact { rank } => {
            offer_exact(ctx, &cand.doc, d, seq, rank, best, &mut state.best, handle);
        }
    }
    Ok(())
}

/// A task of the dynamic (Opt1 + Opt4) layer execution: either a whole
/// candidate or one subtree of an in-flight counting rank scan.
enum BsTask {
    Candidate(u64, Candidate),
    Count(Arc<CandScan>, BlobRef),
}

/// One candidate's in-flight counting rank determination, shared by its
/// subtree tasks.
struct CandScan {
    scan: count::CountScan,
    doc: KeywordSet,
    d: usize,
    seq: u64,
}

/// Prechecks a candidate and, if it survives, seeds its counting rank
/// scan into the pool (root subtree task). The scan's node tasks then
/// fan out across workers.
#[allow(clippy::too_many_arguments)]
fn launch_candidate(
    tree: &SetRTree,
    ctx: &WhyNotContext<'_>,
    opts: &AdvancedOptions,
    cand: &Candidate,
    seq: u64,
    best: &SharedBest,
    state: &mut WorkerState,
    stats: &SharedStats,
    guard: &BudgetGuard,
    tctx: &TaskContext<'_, BsTask>,
) -> Result<()> {
    let _ = guard;
    let (min_score, q_s) = match precheck_candidate(
        ctx,
        opts,
        cand,
        best,
        stats,
        &state.cache,
        &mut state.proj,
        &tctx.handle,
    ) {
        Prechecked::Pruned => return Ok(()),
        Prechecked::Run { min_score, q_s, .. } => (min_score, q_s),
    };
    stats.queries_run.fetch_add(1, Ordering::Relaxed);
    if tree.is_empty() {
        offer_exact(
            ctx,
            &cand.doc,
            cand.edit_distance,
            seq,
            1,
            best,
            &mut state.best,
            &tctx.handle,
        );
        return Ok(());
    }
    // Candidate documents are subsets of the question universe, so the
    // leaf kernel is exact; `None` (scalar merge) when the kernel is off
    // or the universe spilled.
    let leaf_kernel = ctx
        .kernel
        .as_ref()
        .and_then(|_| LeafSimKernel::new(&ctx.universe, &q_s.doc));
    let cs = Arc::new(CandScan {
        scan: count::CountScan::new(q_s, min_score, opts.keyword_set_filtering, leaf_kernel),
        doc: cand.doc.clone(),
        d: cand.edit_distance,
        seq,
    });
    cs.scan.add_pending();
    tctx.spawn(BsTask::Count(Arc::clone(&cs), tree.root()));
    Ok(())
}

/// Executes one subtree task of a counting rank scan: re-derives the
/// live Opt1 limit from the shared bound, expands the node (tallying
/// leaf dominators, forking child subtrees), and — as the scan's last
/// outstanding task — finalises the candidate: offers the exact rank or
/// books the abort as a bound prune, and merges the collected
/// dominators into this worker's Opt3 cache.
#[allow(clippy::too_many_arguments)]
fn count_step(
    tree: &SetRTree,
    ctx: &WhyNotContext<'_>,
    opts: &AdvancedOptions,
    cs: &Arc<CandScan>,
    node: BlobRef,
    best: &SharedBest,
    state: &mut WorkerState,
    stats: &SharedStats,
    guard: &BudgetGuard,
    tctx: &TaskContext<'_, BsTask>,
) -> Result<()> {
    let scan = &cs.scan;
    if !scan.is_aborted() {
        if guard.breached().is_some() {
            scan.abort();
        } else {
            // The live Opt1 limit: tie-permissive against the current
            // (monotonically non-increasing) shared bound, checked at
            // every node so concurrent scans prune against each other.
            match ctx.penalty.rank_upper_limit(cs.d, best.bound().value()) {
                None => scan.abort(),
                Some(limit) if limit != usize::MAX && scan.count() + 1 > limit => scan.abort(),
                _ => {}
            }
        }
    }
    if !scan.is_aborted() {
        scan.expand_node(tree, node, |child| {
            scan.add_pending();
            tctx.spawn(BsTask::Count(Arc::clone(cs), child));
        })?;
    }
    if scan.complete_one() {
        if scan.is_aborted() {
            if guard.breached().is_none() {
                stats.pruned_by_bound.fetch_add(1, Ordering::Relaxed);
                tctx.handle.count_prune_hit();
                let traversal = tree.traversal();
                if traversal.tracer().is_on() {
                    traversal.tracer().event(
                        "bs.candidate_rejected",
                        TracePayload::CandidateRejected {
                            rank_lower_bound: (scan.count() + 1).min(u32::MAX as usize) as u32,
                        },
                    );
                }
            }
        } else {
            offer_exact(
                ctx,
                &cs.doc,
                cs.d,
                cs.seq,
                scan.count() + 1,
                best,
                &mut state.best,
                &tctx.handle,
            );
            if opts.keyword_set_filtering {
                state.cache.extend(scan.found.lock().drain(..));
            }
        }
    }
    Ok(())
}

/// A rank-of-set scan that optionally records the dominators it sees for
/// the Opt3 cache. `live_limit`, when given, re-derives the abort rank
/// from the shared penalty bound at every budget checkpoint.
#[allow(clippy::too_many_arguments)]
fn scan_rank(
    tree: &SetRTree,
    q_s: &SpatialKeywordQuery,
    targets: &[(ObjectId, f64)],
    mut max_rank: Option<usize>,
    live_limit: Option<&dyn Fn() -> Option<usize>>,
    until_found: bool,
    mut collect: Option<&mut HashSet<ObjectId>>,
    guard: &BudgetGuard,
) -> Result<SetRankOutcome> {
    let min_score = targets
        .iter()
        .map(|&(_, s)| s)
        .fold(f64::INFINITY, f64::min);
    let mut remaining: Vec<ObjectId> = targets.iter().map(|&(id, _)| id).collect();
    let mut search = TopKSearch::new(tree, q_s.clone());
    let mut dominators = 0usize;
    let mut pulls = 0usize;
    loop {
        if pulls.is_multiple_of(BUDGET_CHECK_INTERVAL) {
            if let Some(reason) = guard.check() {
                return Ok(SetRankOutcome::Breached { reason });
            }
            if let Some(limit) = live_limit {
                max_rank = match limit() {
                    // No rank can beat the bound any more: abort now.
                    None => {
                        return Ok(SetRankOutcome::Aborted {
                            seen_dominators: dominators,
                        })
                    }
                    Some(usize::MAX) => None,
                    Some(r) => Some(r),
                };
            }
        }
        pulls += 1;
        if let Some(max_rank) = max_rank {
            if dominators + 1 > max_rank {
                return Ok(SetRankOutcome::Aborted {
                    seen_dominators: dominators,
                });
            }
        }
        match search.next_object().map_err(crate::WhyNotError::Storage)? {
            None => break,
            Some((id, score)) => {
                if score > min_score {
                    dominators += 1;
                    remaining.retain(|&t| t != id);
                    if let Some(cache) = collect.as_deref_mut() {
                        cache.insert(id);
                    }
                } else if until_found {
                    remaining.retain(|&t| t != id);
                    if remaining.is_empty() {
                        break;
                    }
                } else {
                    break;
                }
            }
        }
    }
    Ok(SetRankOutcome::Exact {
        rank: dominators + 1,
    })
}
