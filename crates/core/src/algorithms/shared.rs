//! State shared between worker threads: the currently best refined query
//! and its penalty, with a lock-free fast-read mirror (§IV-C4: "the
//! parameters such as p_c and R_L need to be synchronized").

use crate::question::RefinedQuery;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// The currently best refined query and its penalty.
#[derive(Clone, Debug)]
pub(crate) struct BestState {
    pub refined: RefinedQuery,
}

/// Thread-safe wrapper: a mutex for updates plus an atomic penalty mirror
/// for cheap reads on the hot pruning path.
pub(crate) struct SharedBest {
    state: Mutex<BestState>,
    penalty_bits: AtomicU64,
}

impl SharedBest {
    pub fn new(initial: RefinedQuery) -> Self {
        let bits = initial.penalty.to_bits();
        SharedBest {
            state: Mutex::new(BestState { refined: initial }),
            penalty_bits: AtomicU64::new(bits),
        }
    }

    /// The current best penalty (lock-free).
    #[inline]
    pub fn penalty(&self) -> f64 {
        f64::from_bits(self.penalty_bits.load(Ordering::Acquire))
    }

    /// Installs `candidate` if it is strictly better than the current
    /// best. Returns `true` on improvement.
    pub fn improve(&self, candidate: RefinedQuery) -> bool {
        let mut state = self.state.lock();
        if candidate.penalty < state.refined.penalty {
            self.penalty_bits
                .store(candidate.penalty.to_bits(), Ordering::Release);
            state.refined = candidate;
            true
        } else {
            false
        }
    }

    /// Consumes the wrapper, returning the final best.
    pub fn into_inner(self) -> RefinedQuery {
        self.state.into_inner().refined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnsk_text::KeywordSet;

    fn refined(penalty: f64) -> RefinedQuery {
        RefinedQuery {
            doc: KeywordSet::from_ids([1]),
            k: 5,
            rank: 5,
            edit_distance: 1,
            penalty,
        }
    }

    #[test]
    fn improve_only_on_strict_decrease() {
        let best = SharedBest::new(refined(0.5));
        assert!(!best.improve(refined(0.5)), "ties keep the incumbent");
        assert!(!best.improve(refined(0.7)));
        assert!(best.improve(refined(0.3)));
        assert_eq!(best.penalty(), 0.3);
        assert_eq!(best.into_inner().penalty, 0.3);
    }

    #[test]
    fn concurrent_improvements_settle_on_minimum() {
        use std::sync::Arc;
        let best = Arc::new(SharedBest::new(refined(1.0)));
        let mut handles = vec![];
        for t in 0..8u32 {
            let best = Arc::clone(&best);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    let p = ((t * 100 + i) % 97) as f64 / 100.0;
                    best.improve(refined(p));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(best.penalty(), 0.0);
    }
}
