//! State shared between worker threads (§IV-C4: "the parameters such as
//! p_c and R_L need to be synchronized") — and the determinism contract
//! that makes parallel answers bit-identical to single-threaded ones.
//!
//! Every candidate keyword set carries a *sequence number*: its position
//! in the canonical enumeration order (the baseline refined query is
//! seq 0, layer candidates are numbered in enumeration order across
//! layers). Workers keep a private [`LocalBest`] and publish achieved
//! penalties into the lock-free [`SharedBound`] for cross-worker
//! pruning; the final answer is the minimum under the total
//! lexicographic key `(penalty, seq, rank)`, merged at the sequence
//! barrier after each layer.
//!
//! Why this is thread-count invariant: a candidate whose exact penalty
//! equals the global minimum can never be pruned by any bound derived
//! from the (monotonically non-increasing) shared bound — every prune
//! test requires *strictly* exceeding it — so such candidates always
//! run to convergence and offer their exact `(penalty, seq, rank)`
//! key. The set of minimal keys is therefore independent of thread
//! count, steal order and batch partitioning, and the lexicographic
//! merge picks the same one every time: the lowest-seq tie (matching
//! the sequential incumbent-keeps-ties behaviour), at its exact rank.

use crate::question::RefinedQuery;
use parking_lot::Mutex;
use wnsk_exec::SharedBound;

/// Total-order key for best-candidate selection. Penalties are
/// non-negative finite reals (Eqn. 4), so comparing the raw bit pattern
/// is exactly comparing the value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct BestKey {
    penalty_bits: u64,
    seq: u64,
    rank: usize,
}

impl BestKey {
    pub fn new(penalty: f64, seq: u64, rank: usize) -> Self {
        debug_assert!(penalty >= 0.0, "penalties are non-negative");
        BestKey {
            penalty_bits: penalty.to_bits(),
            seq,
            rank,
        }
    }

    /// `true` when `self` wins over `other` under the lexicographic
    /// `(penalty, seq, rank)` order (strictly — ties keep the incumbent).
    #[inline]
    pub fn beats(&self, other: &BestKey) -> bool {
        (self.penalty_bits, self.seq, self.rank) < (other.penalty_bits, other.seq, other.rank)
    }
}

/// A refined query together with its candidate sequence number.
#[derive(Clone, Debug)]
pub(crate) struct BestEntry {
    pub refined: RefinedQuery,
    pub seq: u64,
}

impl BestEntry {
    pub fn new(refined: RefinedQuery, seq: u64) -> Self {
        BestEntry { refined, seq }
    }

    pub fn key(&self) -> BestKey {
        BestKey::new(self.refined.penalty, self.seq, self.refined.rank)
    }
}

/// One worker's private best — no synchronisation; merged into
/// [`SharedBest`] at the layer's sequence barrier.
#[derive(Default)]
pub(crate) struct LocalBest {
    entry: Option<BestEntry>,
}

impl LocalBest {
    pub fn new() -> Self {
        LocalBest::default()
    }

    /// Installs the entry built by `make` iff `key` beats the current
    /// local best. The constructor only runs on improvement, keeping
    /// the hot offer path free of `RefinedQuery` clones.
    pub fn improve_with(&mut self, key: BestKey, make: impl FnOnce() -> BestEntry) -> bool {
        let improves = match &self.entry {
            None => true,
            Some(cur) => key.beats(&cur.key()),
        };
        if improves {
            let entry = make();
            debug_assert!(entry.key() == key, "key must describe the entry");
            self.entry = Some(entry);
        }
        improves
    }

    /// Installs `entry` iff it beats the current local best.
    pub fn offer(&mut self, entry: BestEntry) -> bool {
        self.improve_with(entry.key(), || entry)
    }
}

/// The globally best refined query: a mutex-guarded `(entry)` updated at
/// sequence barriers plus the lock-free [`SharedBound`] mirror that
/// workers prune against mid-layer.
pub(crate) struct SharedBest {
    state: Mutex<BestEntry>,
    bound: SharedBound,
}

impl SharedBest {
    /// Starts from the baseline refined query (seq 0, penalty λ).
    pub fn new(baseline: RefinedQuery) -> Self {
        let bound = SharedBound::new(baseline.penalty);
        SharedBest {
            state: Mutex::new(BestEntry::new(baseline, 0)),
            bound,
        }
    }

    /// The cross-worker penalty bound (`p_c`), for lock-free pruning.
    #[inline]
    pub fn bound(&self) -> &SharedBound {
        &self.bound
    }

    /// Penalty of the merged best. Called at layer boundaries (Opt2 /
    /// Algorithm 4 line 4), not on the per-candidate hot path.
    pub fn penalty(&self) -> f64 {
        self.state.lock().refined.penalty
    }

    /// Merges a worker's local best at the sequence barrier. The
    /// lexicographic key makes the result independent of merge order.
    pub fn merge(&self, local: LocalBest) {
        let Some(entry) = local.entry else {
            return;
        };
        let mut state = self.state.lock();
        if entry.key().beats(&state.key()) {
            self.bound.refresh(entry.refined.penalty);
            *state = entry;
        }
    }

    /// Consumes the wrapper, returning the final best refined query.
    pub fn into_inner(self) -> RefinedQuery {
        self.state.into_inner().refined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnsk_text::KeywordSet;

    fn refined(penalty: f64, rank: usize) -> RefinedQuery {
        RefinedQuery {
            doc: KeywordSet::from_ids([1]),
            k: rank.max(1),
            rank,
            edit_distance: 1,
            penalty,
        }
    }

    #[test]
    fn key_order_is_penalty_then_seq_then_rank() {
        let a = BestKey::new(0.3, 5, 9);
        assert!(BestKey::new(0.2, 9, 9).beats(&a), "lower penalty wins");
        assert!(BestKey::new(0.3, 4, 9).beats(&a), "same penalty: lower seq");
        assert!(BestKey::new(0.3, 5, 8).beats(&a), "same seq: lower rank");
        assert!(
            !BestKey::new(0.3, 5, 9).beats(&a),
            "exact tie keeps incumbent"
        );
        assert!(!BestKey::new(0.4, 1, 1).beats(&a));
    }

    #[test]
    fn local_best_keeps_lowest_key() {
        let mut local = LocalBest::new();
        assert!(local.offer(BestEntry::new(refined(0.5, 7), 3)));
        assert!(
            !local.offer(BestEntry::new(refined(0.5, 7), 3)),
            "tie loses"
        );
        assert!(!local.offer(BestEntry::new(refined(0.5, 7), 4)));
        assert!(
            local.offer(BestEntry::new(refined(0.5, 6), 3)),
            "tighter rank"
        );
        assert!(local.offer(BestEntry::new(refined(0.2, 9), 8)));
        assert_eq!(local.entry.unwrap().refined.penalty, 0.2);
    }

    #[test]
    fn improve_with_skips_construction_on_loss() {
        let mut local = LocalBest::new();
        local.offer(BestEntry::new(refined(0.1, 1), 1));
        let mut built = false;
        local.improve_with(BestKey::new(0.9, 2, 2), || {
            built = true;
            BestEntry::new(refined(0.9, 2), 2)
        });
        assert!(!built, "losing keys must not build entries");
    }

    #[test]
    fn merge_is_order_independent() {
        let entries = [
            BestEntry::new(refined(0.5, 5), 2),
            BestEntry::new(refined(0.3, 4), 9),
            BestEntry::new(refined(0.3, 4), 1),
        ];
        // Two merge orders, same winner: penalty 0.3 at the lowest seq.
        for order in [[0usize, 1, 2], [2, 1, 0]] {
            let best = SharedBest::new(refined(0.8, 10));
            for &i in &order {
                let mut local = LocalBest::new();
                local.offer(entries[i].clone());
                best.merge(local);
            }
            assert_eq!(best.penalty(), 0.3);
            assert_eq!(best.bound().value(), 0.3);
            let winner = best.into_inner();
            assert_eq!(winner.rank, 4);
        }
    }

    #[test]
    fn bound_tracks_merged_minimum() {
        let best = SharedBest::new(refined(1.0, 10));
        assert_eq!(best.bound().value(), 1.0);
        let mut local = LocalBest::new();
        local.offer(BestEntry::new(refined(0.25, 3), 7));
        best.merge(local);
        assert_eq!(best.bound().value(), 0.25);
        assert_eq!(best.penalty(), 0.25);
        // An empty local is a no-op.
        best.merge(LocalBest::new());
        assert_eq!(best.penalty(), 0.25);
    }
}
