//! A batteries-included facade bundling a dataset with both indexes.

use crate::algorithms::{
    answer_advanced, answer_approx_kcr, answer_basic, answer_kcr, AdvancedOptions, KcrOptions,
};
use crate::error::{Result, WhyNotError};
use crate::ingest::Mutation;
use crate::question::{AlgoStats, WhyNotAnswer, WhyNotQuestion};
use std::sync::Arc;
use wnsk_index::{Dataset, KcrTree, ObjectId, SetRTree, SpatialKeywordQuery, TopKSearch};
use wnsk_obs::{names, QueryReport, Registry, Snapshot};
use wnsk_storage::{BufferPool, BufferPoolConfig, MemBackend, RecoveryReport, StorageError, Wal};
use wnsk_text::Vocabulary;

/// A ready-to-query why-not engine: dataset + SetR-tree + KcR-tree, each
/// on its own simulated disk with the paper's defaults (4 KiB pages,
/// 4 MiB buffer, fanout 100).
///
/// Every component publishes its counters into one shared metrics
/// [`Registry`] (buffer pools under `setr.pool.` / `kcr.pool.`, tree
/// traversals under `setr.` / `kcr.`), so a [`WhyNotEngine::report`]
/// built around any `answer_*` call shows the whole stack's activity.
pub struct WhyNotEngine {
    dataset: Dataset,
    setr: SetRTree,
    kcr: KcrTree,
    vocabulary: Option<Vocabulary>,
    registry: Registry,
    /// Monotonic dataset version: bumped once per applied mutation.
    /// Caches stamp entries with the epoch they were computed under and
    /// drop them when it moves.
    epoch: u64,
    /// Durable mutation log, when attached. Without one, mutations are
    /// in-memory only.
    wal: Option<Wal>,
}

/// The paper's node capacity (§VII-A1).
pub const DEFAULT_FANOUT: usize = 100;

/// Outcome of [`WhyNotEngine::count_dominators`]: the number of live
/// objects scoring strictly above a threshold, either exact or abandoned
/// early once a caller-supplied limit proves the total can only grow
/// past it.
///
/// This is the shard-local building block of the scatter-gather rank
/// reconstruction: dominator counts are additive across a disjoint
/// partition of the dataset (every object lives in exactly one shard and
/// scores are computed against the shared world bounds), so a
/// coordinator sums per-shard `Exact` counts to recover the global rank
/// `R(M, q)` the single-engine scan would produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DominatorCount {
    /// Exactly this many objects score strictly above the threshold.
    Exact(usize),
    /// The scan stopped early: at least this many dominators exist, and
    /// `count + 1` already exceeds the caller's limit.
    AtLeast(usize),
}

impl WhyNotEngine {
    /// Builds both indexes over `dataset` on in-memory page stores.
    pub fn build_in_memory(dataset: Dataset) -> Result<Self> {
        Self::build_with(dataset, DEFAULT_FANOUT, BufferPoolConfig::default())
    }

    /// Builds with explicit fanout and buffer-pool configuration.
    pub fn build_with(
        dataset: Dataset,
        fanout: usize,
        pool_config: BufferPoolConfig,
    ) -> Result<Self> {
        let registry = Registry::new();
        let setr_pool = Arc::new(BufferPool::new_registered(
            Arc::new(MemBackend::new()),
            pool_config,
            &registry,
            "setr.pool.",
        ));
        let kcr_pool = Arc::new(BufferPool::new_registered(
            Arc::new(MemBackend::new()),
            pool_config,
            &registry,
            "kcr.pool.",
        ));
        let mut setr = SetRTree::build(setr_pool, &dataset, fanout)?;
        setr.register_metrics(&registry, "setr.");
        let mut kcr = KcrTree::build(kcr_pool, &dataset, fanout)?;
        kcr.register_metrics(&registry, "kcr.");
        Ok(WhyNotEngine {
            dataset,
            setr,
            kcr,
            vocabulary: None,
            registry,
            epoch: 0,
            wal: None,
        })
    }

    /// Attaches a vocabulary so answers can be rendered with keyword
    /// strings.
    pub fn with_vocabulary(mut self, vocabulary: Vocabulary) -> Self {
        self.vocabulary = Some(vocabulary);
        self
    }

    /// The indexed dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The SetR-tree (used by BS / AdvancedBS).
    pub fn setr(&self) -> &SetRTree {
        &self.setr
    }

    /// The KcR-tree (used by KcRBased).
    pub fn kcr(&self) -> &KcrTree {
        &self.kcr
    }

    /// The attached vocabulary, if any.
    pub fn vocabulary(&self) -> Option<&Vocabulary> {
        self.vocabulary.as_ref()
    }

    /// The unified metrics registry every component reports into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Installs one tracer on both trees, so every solver run against
    /// this engine records its spans there. Tracing is observation-only
    /// (answers and work metrics are bit-identical with it on or off);
    /// pass a disabled tracer and flip [`wnsk_obs::Tracer::set_enabled`]
    /// to sample individual queries — the serving layer's slow-query
    /// log does exactly that.
    pub fn set_tracer(&mut self, tracer: wnsk_obs::Tracer) {
        self.setr.set_tracer(tracer.clone());
        self.kcr.set_tracer(tracer);
    }

    /// The current dataset epoch: 0 at build, +1 per applied mutation
    /// (live or replayed). Anything derived from the dataset — cached
    /// answers, initial-rank hints — is valid only for the epoch it was
    /// computed under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The attached write-ahead log, if any.
    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    /// Attaches a write-ahead log stored behind `pool`, first replaying
    /// every committed record against this engine (through the same
    /// [`WhyNotEngine::apply`] path live mutations take, so the rebuilt
    /// state is identical to a never-crashed engine's). A torn or corrupt
    /// tail is truncated; the returned [`RecoveryReport`] says how many
    /// records were replayed and how many bytes were dropped. After this,
    /// [`WhyNotEngine::ingest`] is durable.
    pub fn attach_wal(&mut self, pool: Arc<BufferPool>) -> Result<RecoveryReport> {
        if self.wal.is_some() {
            return Err(
                StorageError::invalid_argument("ingest", "a WAL is already attached").into(),
            );
        }
        let registry = self.registry.clone();
        let (mut wal, report) = Wal::recover(pool, |_lsn, kind, payload| {
            let m = Mutation::decode(kind, payload)?;
            self.apply(&m).map_err(|e| match e {
                WhyNotError::Storage(s) => s,
                other => StorageError::corrupt("wal replay", other.to_string()),
            })?;
            Ok(())
        })?;
        wal.register_metrics(&registry);
        registry
            .counter(names::WAL_RECOVERED_RECORDS)
            .add(report.records_replayed);
        registry
            .counter(names::WAL_TRUNCATED_BYTES)
            .add(report.bytes_truncated);
        self.wal = Some(wal);
        Ok(report)
    }

    /// Durably applies one mutation: logged and group-committed to the
    /// attached WAL first (if any), then applied in memory. Returns the
    /// id of the affected object.
    pub fn ingest(&mut self, m: &Mutation) -> Result<ObjectId> {
        let mut ids = self.ingest_batch(std::slice::from_ref(m))?;
        Ok(ids.pop().expect("one mutation in, one id out"))
    }

    /// Durably applies a batch of mutations under a single group commit
    /// (one WAL sync for the whole batch). The batch is validated up
    /// front so the log never records a mutation that cannot replay; it
    /// is applied in order, and ids for inserts are assigned densely in
    /// that order.
    ///
    /// If the commit itself fails the batch is not applied and its
    /// durability is ambiguous (exactly as after a crash): rebuild the
    /// engine and recover via [`WhyNotEngine::attach_wal`] before
    /// continuing.
    pub fn ingest_batch(&mut self, muts: &[Mutation]) -> Result<Vec<ObjectId>> {
        self.validate_batch(muts)?;
        if let Some(wal) = self.wal.as_mut() {
            for m in muts {
                wal.append(m.kind(), &m.encode())?;
            }
            wal.commit()?;
        }
        muts.iter().map(|m| self.apply(m)).collect()
    }

    /// Applies one mutation to the dataset and both trees, bumping the
    /// epoch. Does NOT touch the WAL — this is the replay/apply half that
    /// [`WhyNotEngine::ingest`] and recovery share; calling it directly
    /// bypasses durability.
    pub fn apply(&mut self, m: &Mutation) -> Result<ObjectId> {
        let id = match m {
            Mutation::Insert { loc, doc } => {
                let id = self.dataset.insert(*loc, doc.clone())?;
                self.setr.insert(id, *loc, doc)?;
                self.kcr.insert(id, *loc, doc)?;
                id
            }
            Mutation::Remove { id } => {
                self.require_live(*id)?;
                let loc = self.dataset.object(*id).loc;
                self.dataset.remove(*id)?;
                self.setr.remove(*id, loc)?;
                self.kcr.remove(*id, loc)?;
                *id
            }
            Mutation::UpdateDoc { id, doc } => {
                self.require_live(*id)?;
                let loc = self.dataset.object(*id).loc;
                self.dataset.update_doc(*id, doc.clone())?;
                self.setr.update_doc(*id, loc, doc)?;
                self.kcr.update_doc(*id, loc, doc)?;
                *id
            }
        };
        self.epoch += 1;
        self.registry.counter(names::INGEST_APPLIED).inc();
        Ok(id)
    }

    fn require_live(&self, id: ObjectId) -> Result<()> {
        if !self.dataset.is_live(id) {
            return Err(
                StorageError::invalid_argument("ingest", format!("{id:?} is not live")).into(),
            );
        }
        Ok(())
    }

    /// Rejects a batch whose mutations cannot all apply, accounting for
    /// ids the batch itself inserts or removes along the way.
    fn validate_batch(&self, muts: &[Mutation]) -> Result<()> {
        let base = self.dataset.len() as u32;
        let mut next_id = base;
        let mut removed: std::collections::HashSet<ObjectId> = std::collections::HashSet::new();
        for m in muts {
            match m {
                Mutation::Insert { loc, .. } => {
                    if !self.dataset.world().rect().contains_point(loc) {
                        return Err(StorageError::invalid_argument(
                            "ingest",
                            format!("location {loc:?} lies outside the world bounds"),
                        )
                        .into());
                    }
                    next_id += 1;
                }
                Mutation::Remove { id } | Mutation::UpdateDoc { id, .. } => {
                    let pending_insert = id.0 >= base && id.0 < next_id;
                    let live = self.dataset.is_live(*id) || pending_insert;
                    if !live || removed.contains(id) {
                        return Err(StorageError::invalid_argument(
                            "ingest",
                            format!("{id:?} is not live"),
                        )
                        .into());
                    }
                    if matches!(m, Mutation::Remove { .. }) {
                        removed.insert(*id);
                    }
                }
            }
        }
        Ok(())
    }

    /// Captures the current value of every metric — take one before a
    /// query and pass it to [`WhyNotEngine::report`] afterwards.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Builds the unified per-query report: the answer's solver stats
    /// (phase timings, candidate/prune counters) are mirrored into the
    /// registry, then everything that moved since `before` — buffer-pool
    /// I/O, tree node visits, Theorem 2/3 prune events, solver counters —
    /// is folded into one [`QueryReport`].
    ///
    /// ```
    /// # use wnsk_core::*;
    /// # use wnsk_index::{Dataset, SpatialObject, ObjectId};
    /// # use wnsk_geo::{Point, WorldBounds};
    /// # use wnsk_text::KeywordSet;
    /// # let objects = (0..30).map(|i| SpatialObject {
    /// #     id: ObjectId(0),
    /// #     loc: Point::new((i as f64 * 7.0 % 29.0) / 29.0, (i as f64 * 11.0 % 31.0) / 31.0),
    /// #     doc: KeywordSet::from_ids([i as u32 % 5, 5 + i as u32 % 3]),
    /// # }).collect();
    /// # let dataset = Dataset::new(objects, WorldBounds::unit());
    /// let engine = WhyNotEngine::build_with(
    ///     dataset, 4, wnsk_storage::BufferPoolConfig::default())?;
    /// # let query = wnsk_index::SpatialKeywordQuery::new(
    /// #     Point::new(0.1, 0.1), KeywordSet::from_ids([0, 5]), 3, 0.5);
    /// # let missing = vec![engine.top_k(&query)?.last().unwrap().0];
    /// # let question = WhyNotQuestion::new(
    /// #     wnsk_index::SpatialKeywordQuery { k: 2, ..query }, missing, 0.5);
    /// let before = engine.snapshot();
    /// let answer = engine.answer(&question)?;
    /// let report = engine.report("KcRBased", &answer.stats, &before);
    /// assert!(report.counter("kcr.node_visits") > 0);
    /// println!("{}", report.render());
    /// # Ok::<(), WhyNotError>(())
    /// ```
    pub fn report(&self, algorithm: &str, stats: &AlgoStats, before: &Snapshot) -> QueryReport {
        stats.record_into(&self.registry);
        let delta = self.registry.snapshot().since(before);
        let mut report = QueryReport::new(algorithm, stats.wall);
        for (name, elapsed) in stats.phases() {
            report.push_phase(name, elapsed);
        }
        report.absorb(&delta);
        report
    }

    /// Runs a plain spatial keyword top-k query.
    pub fn top_k(&self, query: &SpatialKeywordQuery) -> Result<Vec<(ObjectId, f64)>> {
        Ok(self.setr.top_k(query)?)
    }

    /// Counts the live objects whose score under `query` is *strictly*
    /// above `min_score`, streaming the SetR-tree best-first so the scan
    /// touches only the score range above the threshold.
    ///
    /// With `limit = Some(l)` the scan aborts as soon as `count + 1 > l`
    /// and reports [`DominatorCount::AtLeast`] — the same tie-permissive
    /// abort the single-engine rank scan uses, so a coordinator pruning a
    /// candidate against `l` makes exactly the decision the one-shard
    /// solver would.
    pub fn count_dominators(
        &self,
        query: &SpatialKeywordQuery,
        min_score: f64,
        limit: Option<usize>,
    ) -> Result<DominatorCount> {
        let mut search = TopKSearch::new(&self.setr, query.clone());
        let mut count = 0usize;
        loop {
            if let Some(l) = limit {
                if count + 1 > l {
                    return Ok(DominatorCount::AtLeast(count));
                }
            }
            match search.next_object()? {
                Some((_, score)) if score > min_score => count += 1,
                _ => break,
            }
        }
        Ok(DominatorCount::Exact(count))
    }

    /// Answers a why-not question with the recommended solver
    /// (KcRBased with default options).
    pub fn answer(&self, question: &WhyNotQuestion) -> Result<WhyNotAnswer> {
        answer_kcr(&self.dataset, &self.kcr, question, KcrOptions::default())
    }

    /// Answers under a [`QueryBudget`](crate::QueryBudget): the
    /// recommended solver runs until the budget is exhausted, then
    /// degrades to the in-memory approximate fallback (the answer's
    /// `quality` field says which happened).
    pub fn answer_with_budget(
        &self,
        question: &WhyNotQuestion,
        budget: crate::QueryBudget,
    ) -> Result<WhyNotAnswer> {
        let opts = KcrOptions {
            budget,
            ..KcrOptions::default()
        };
        answer_kcr(&self.dataset, &self.kcr, question, opts)
    }

    /// Answers with the basic algorithm (BS).
    pub fn answer_basic(&self, question: &WhyNotQuestion) -> Result<WhyNotAnswer> {
        answer_basic(&self.dataset, &self.setr, question)
    }

    /// Answers with AdvancedBS.
    pub fn answer_advanced(
        &self,
        question: &WhyNotQuestion,
        opts: AdvancedOptions,
    ) -> Result<WhyNotAnswer> {
        answer_advanced(&self.dataset, &self.setr, question, opts)
    }

    /// Answers with KcRBased.
    pub fn answer_kcr(&self, question: &WhyNotQuestion, opts: KcrOptions) -> Result<WhyNotAnswer> {
        answer_kcr(&self.dataset, &self.kcr, question, opts)
    }

    /// Answers approximately: only the `t` highest-benefit candidates are
    /// considered (§VI-B), trading quality for time.
    pub fn answer_approx(&self, question: &WhyNotQuestion, t: usize) -> Result<WhyNotAnswer> {
        answer_approx_kcr(&self.dataset, &self.kcr, question, KcrOptions::default(), t)
    }

    /// Renders a keyword set with the attached vocabulary (falls back to
    /// raw term ids).
    pub fn render_keywords(&self, doc: &wnsk_text::KeywordSet) -> String {
        let words: Vec<String> = doc
            .iter()
            .map(|t| match self.vocabulary.as_ref().and_then(|v| v.name(t)) {
                Some(name) => name.to_string(),
                None => format!("t{}", t.0),
            })
            .collect();
        format!("{{{}}}", words.join(", "))
    }
}
