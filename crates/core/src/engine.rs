//! A batteries-included facade bundling a dataset with both indexes.

use crate::algorithms::{
    answer_advanced, answer_approx_kcr, answer_basic, answer_kcr, AdvancedOptions, KcrOptions,
};
use crate::error::Result;
use crate::question::{WhyNotAnswer, WhyNotQuestion};
use std::sync::Arc;
use wnsk_index::{Dataset, KcrTree, ObjectId, SetRTree, SpatialKeywordQuery};
use wnsk_storage::{BufferPool, BufferPoolConfig, MemBackend};
use wnsk_text::Vocabulary;

/// A ready-to-query why-not engine: dataset + SetR-tree + KcR-tree, each
/// on its own simulated disk with the paper's defaults (4 KiB pages,
/// 4 MiB buffer, fanout 100).
pub struct WhyNotEngine {
    dataset: Dataset,
    setr: SetRTree,
    kcr: KcrTree,
    vocabulary: Option<Vocabulary>,
}

/// The paper's node capacity (§VII-A1).
pub const DEFAULT_FANOUT: usize = 100;

impl WhyNotEngine {
    /// Builds both indexes over `dataset` on in-memory page stores.
    pub fn build_in_memory(dataset: Dataset) -> Result<Self> {
        Self::build_with(dataset, DEFAULT_FANOUT, BufferPoolConfig::default())
    }

    /// Builds with explicit fanout and buffer-pool configuration.
    pub fn build_with(
        dataset: Dataset,
        fanout: usize,
        pool_config: BufferPoolConfig,
    ) -> Result<Self> {
        let setr_pool = Arc::new(BufferPool::new(Arc::new(MemBackend::new()), pool_config));
        let kcr_pool = Arc::new(BufferPool::new(Arc::new(MemBackend::new()), pool_config));
        let setr = SetRTree::build(setr_pool, &dataset, fanout)?;
        let kcr = KcrTree::build(kcr_pool, &dataset, fanout)?;
        Ok(WhyNotEngine {
            dataset,
            setr,
            kcr,
            vocabulary: None,
        })
    }

    /// Attaches a vocabulary so answers can be rendered with keyword
    /// strings.
    pub fn with_vocabulary(mut self, vocabulary: Vocabulary) -> Self {
        self.vocabulary = Some(vocabulary);
        self
    }

    /// The indexed dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The SetR-tree (used by BS / AdvancedBS).
    pub fn setr(&self) -> &SetRTree {
        &self.setr
    }

    /// The KcR-tree (used by KcRBased).
    pub fn kcr(&self) -> &KcrTree {
        &self.kcr
    }

    /// The attached vocabulary, if any.
    pub fn vocabulary(&self) -> Option<&Vocabulary> {
        self.vocabulary.as_ref()
    }

    /// Runs a plain spatial keyword top-k query.
    pub fn top_k(&self, query: &SpatialKeywordQuery) -> Result<Vec<(ObjectId, f64)>> {
        Ok(self.setr.top_k(query)?)
    }

    /// Answers a why-not question with the recommended solver
    /// (KcRBased with default options).
    pub fn answer(&self, question: &WhyNotQuestion) -> Result<WhyNotAnswer> {
        answer_kcr(&self.dataset, &self.kcr, question, KcrOptions::default())
    }

    /// Answers with the basic algorithm (BS).
    pub fn answer_basic(&self, question: &WhyNotQuestion) -> Result<WhyNotAnswer> {
        answer_basic(&self.dataset, &self.setr, question)
    }

    /// Answers with AdvancedBS.
    pub fn answer_advanced(
        &self,
        question: &WhyNotQuestion,
        opts: AdvancedOptions,
    ) -> Result<WhyNotAnswer> {
        answer_advanced(&self.dataset, &self.setr, question, opts)
    }

    /// Answers with KcRBased.
    pub fn answer_kcr(
        &self,
        question: &WhyNotQuestion,
        opts: KcrOptions,
    ) -> Result<WhyNotAnswer> {
        answer_kcr(&self.dataset, &self.kcr, question, opts)
    }

    /// Answers approximately: only the `t` highest-benefit candidates are
    /// considered (§VI-B), trading quality for time.
    pub fn answer_approx(&self, question: &WhyNotQuestion, t: usize) -> Result<WhyNotAnswer> {
        answer_approx_kcr(&self.dataset, &self.kcr, question, KcrOptions::default(), t)
    }

    /// Renders a keyword set with the attached vocabulary (falls back to
    /// raw term ids).
    pub fn render_keywords(&self, doc: &wnsk_text::KeywordSet) -> String {
        let words: Vec<String> = doc
            .iter()
            .map(|t| match self.vocabulary.as_ref().and_then(|v| v.name(t)) {
                Some(name) => name.to_string(),
                None => format!("t{}", t.0),
            })
            .collect();
        format!("{{{}}}", words.join(", "))
    }
}
