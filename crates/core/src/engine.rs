//! A batteries-included facade bundling a dataset with both indexes.

use crate::algorithms::{
    answer_advanced, answer_approx_kcr, answer_basic, answer_kcr, AdvancedOptions, KcrOptions,
};
use crate::error::Result;
use crate::question::{AlgoStats, WhyNotAnswer, WhyNotQuestion};
use std::sync::Arc;
use wnsk_index::{Dataset, KcrTree, ObjectId, SetRTree, SpatialKeywordQuery};
use wnsk_obs::{QueryReport, Registry, Snapshot};
use wnsk_storage::{BufferPool, BufferPoolConfig, MemBackend};
use wnsk_text::Vocabulary;

/// A ready-to-query why-not engine: dataset + SetR-tree + KcR-tree, each
/// on its own simulated disk with the paper's defaults (4 KiB pages,
/// 4 MiB buffer, fanout 100).
///
/// Every component publishes its counters into one shared metrics
/// [`Registry`] (buffer pools under `setr.pool.` / `kcr.pool.`, tree
/// traversals under `setr.` / `kcr.`), so a [`WhyNotEngine::report`]
/// built around any `answer_*` call shows the whole stack's activity.
pub struct WhyNotEngine {
    dataset: Dataset,
    setr: SetRTree,
    kcr: KcrTree,
    vocabulary: Option<Vocabulary>,
    registry: Registry,
}

/// The paper's node capacity (§VII-A1).
pub const DEFAULT_FANOUT: usize = 100;

impl WhyNotEngine {
    /// Builds both indexes over `dataset` on in-memory page stores.
    pub fn build_in_memory(dataset: Dataset) -> Result<Self> {
        Self::build_with(dataset, DEFAULT_FANOUT, BufferPoolConfig::default())
    }

    /// Builds with explicit fanout and buffer-pool configuration.
    pub fn build_with(
        dataset: Dataset,
        fanout: usize,
        pool_config: BufferPoolConfig,
    ) -> Result<Self> {
        let registry = Registry::new();
        let setr_pool = Arc::new(BufferPool::new_registered(
            Arc::new(MemBackend::new()),
            pool_config,
            &registry,
            "setr.pool.",
        ));
        let kcr_pool = Arc::new(BufferPool::new_registered(
            Arc::new(MemBackend::new()),
            pool_config,
            &registry,
            "kcr.pool.",
        ));
        let mut setr = SetRTree::build(setr_pool, &dataset, fanout)?;
        setr.register_metrics(&registry, "setr.");
        let mut kcr = KcrTree::build(kcr_pool, &dataset, fanout)?;
        kcr.register_metrics(&registry, "kcr.");
        Ok(WhyNotEngine {
            dataset,
            setr,
            kcr,
            vocabulary: None,
            registry,
        })
    }

    /// Attaches a vocabulary so answers can be rendered with keyword
    /// strings.
    pub fn with_vocabulary(mut self, vocabulary: Vocabulary) -> Self {
        self.vocabulary = Some(vocabulary);
        self
    }

    /// The indexed dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The SetR-tree (used by BS / AdvancedBS).
    pub fn setr(&self) -> &SetRTree {
        &self.setr
    }

    /// The KcR-tree (used by KcRBased).
    pub fn kcr(&self) -> &KcrTree {
        &self.kcr
    }

    /// The attached vocabulary, if any.
    pub fn vocabulary(&self) -> Option<&Vocabulary> {
        self.vocabulary.as_ref()
    }

    /// The unified metrics registry every component reports into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Captures the current value of every metric — take one before a
    /// query and pass it to [`WhyNotEngine::report`] afterwards.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Builds the unified per-query report: the answer's solver stats
    /// (phase timings, candidate/prune counters) are mirrored into the
    /// registry, then everything that moved since `before` — buffer-pool
    /// I/O, tree node visits, Theorem 2/3 prune events, solver counters —
    /// is folded into one [`QueryReport`].
    ///
    /// ```
    /// # use wnsk_core::*;
    /// # use wnsk_index::{Dataset, SpatialObject, ObjectId};
    /// # use wnsk_geo::{Point, WorldBounds};
    /// # use wnsk_text::KeywordSet;
    /// # let objects = (0..30).map(|i| SpatialObject {
    /// #     id: ObjectId(0),
    /// #     loc: Point::new((i as f64 * 7.0 % 29.0) / 29.0, (i as f64 * 11.0 % 31.0) / 31.0),
    /// #     doc: KeywordSet::from_ids([i as u32 % 5, 5 + i as u32 % 3]),
    /// # }).collect();
    /// # let dataset = Dataset::new(objects, WorldBounds::unit());
    /// let engine = WhyNotEngine::build_with(
    ///     dataset, 4, wnsk_storage::BufferPoolConfig::default())?;
    /// # let query = wnsk_index::SpatialKeywordQuery::new(
    /// #     Point::new(0.1, 0.1), KeywordSet::from_ids([0, 5]), 3, 0.5);
    /// # let missing = vec![engine.top_k(&query)?.last().unwrap().0];
    /// # let question = WhyNotQuestion::new(
    /// #     wnsk_index::SpatialKeywordQuery { k: 2, ..query }, missing, 0.5);
    /// let before = engine.snapshot();
    /// let answer = engine.answer(&question)?;
    /// let report = engine.report("KcRBased", &answer.stats, &before);
    /// assert!(report.counter("kcr.node_visits") > 0);
    /// println!("{}", report.render());
    /// # Ok::<(), WhyNotError>(())
    /// ```
    pub fn report(&self, algorithm: &str, stats: &AlgoStats, before: &Snapshot) -> QueryReport {
        stats.record_into(&self.registry);
        let delta = self.registry.snapshot().since(before);
        let mut report = QueryReport::new(algorithm, stats.wall);
        for (name, elapsed) in stats.phases() {
            report.push_phase(name, elapsed);
        }
        report.absorb(&delta);
        report
    }

    /// Runs a plain spatial keyword top-k query.
    pub fn top_k(&self, query: &SpatialKeywordQuery) -> Result<Vec<(ObjectId, f64)>> {
        Ok(self.setr.top_k(query)?)
    }

    /// Answers a why-not question with the recommended solver
    /// (KcRBased with default options).
    pub fn answer(&self, question: &WhyNotQuestion) -> Result<WhyNotAnswer> {
        answer_kcr(&self.dataset, &self.kcr, question, KcrOptions::default())
    }

    /// Answers under a [`QueryBudget`](crate::QueryBudget): the
    /// recommended solver runs until the budget is exhausted, then
    /// degrades to the in-memory approximate fallback (the answer's
    /// `quality` field says which happened).
    pub fn answer_with_budget(
        &self,
        question: &WhyNotQuestion,
        budget: crate::QueryBudget,
    ) -> Result<WhyNotAnswer> {
        let opts = KcrOptions {
            budget,
            ..KcrOptions::default()
        };
        answer_kcr(&self.dataset, &self.kcr, question, opts)
    }

    /// Answers with the basic algorithm (BS).
    pub fn answer_basic(&self, question: &WhyNotQuestion) -> Result<WhyNotAnswer> {
        answer_basic(&self.dataset, &self.setr, question)
    }

    /// Answers with AdvancedBS.
    pub fn answer_advanced(
        &self,
        question: &WhyNotQuestion,
        opts: AdvancedOptions,
    ) -> Result<WhyNotAnswer> {
        answer_advanced(&self.dataset, &self.setr, question, opts)
    }

    /// Answers with KcRBased.
    pub fn answer_kcr(&self, question: &WhyNotQuestion, opts: KcrOptions) -> Result<WhyNotAnswer> {
        answer_kcr(&self.dataset, &self.kcr, question, opts)
    }

    /// Answers approximately: only the `t` highest-benefit candidates are
    /// considered (§VI-B), trading quality for time.
    pub fn answer_approx(&self, question: &WhyNotQuestion, t: usize) -> Result<WhyNotAnswer> {
        answer_approx_kcr(&self.dataset, &self.kcr, question, KcrOptions::default(), t)
    }

    /// Renders a keyword set with the attached vocabulary (falls back to
    /// raw term ids).
    pub fn render_keywords(&self, doc: &wnsk_text::KeywordSet) -> String {
        let words: Vec<String> = doc
            .iter()
            .map(|t| match self.vocabulary.as_ref().and_then(|v| v.name(t)) {
                Some(name) => name.to_string(),
                None => format!("t{}", t.0),
            })
            .collect();
        format!("{{{}}}", words.join(", "))
    }
}
