//! Answering why-not spatial keyword top-k queries via keyword adaption —
//! the primary contribution of the reproduced ICDE 2016 paper.
//!
//! Given an initial query `q = (loc, doc₀, k₀, α)` and a set of *missing*
//! objects `M` the user expected in the result, the library returns the
//! refined query `q' = (loc, doc', k', α)` that (a) contains every object
//! of `M` in its top-`k'` and (b) minimises the penalty of Eqn. 4 — a
//! weighted blend of how much `k` grew and how far `doc'` drifted from
//! `doc₀` (insert/delete edit distance over `doc₀ ∪ M.doc`).
//!
//! Three solvers are provided, matching the paper's evaluated systems:
//!
//! * [`algorithms::answer_basic`] — **BS** (§IV-B):
//!   exhaustively runs one spatial keyword query per candidate keyword
//!   set over the SetR-tree.
//! * [`algorithms::answer_advanced`] — **AdvancedBS**
//!   (§IV-C): BS plus early stop (Eqn. 6), particularity-driven
//!   enumeration order (Eqn. 7), dominator-cache keyword-set filtering,
//!   and multi-threaded candidate processing; each optimisation can be
//!   toggled for ablation.
//! * [`algorithms::answer_kcr`] — **KcRBased** (§V):
//!   bound-and-prune over the KcR-tree — one traversal scores a whole
//!   batch of candidate sets via `MaxDom`/`MinDom`, driven in
//!   edit-distance layers (Algorithms 3 & 4).
//!
//! All three support multiple missing objects (§VI-A) and a
//! sampling-based approximate mode (§VI-B). The [`WhyNotEngine`] facade
//! bundles dataset + indexes for applications; the algorithm functions
//! take the pieces explicitly for experiments.

pub mod algorithms;
mod budget;
mod engine;
mod enumeration;
mod error;
pub mod extensions;
pub mod ingest;
mod penalty;
mod question;
mod rank;

pub use budget::{AnswerQuality, BudgetGuard, DegradeReason, QueryBudget};
pub use engine::{DominatorCount, WhyNotEngine, DEFAULT_FANOUT};
pub use enumeration::{Candidate, CandidateEnumerator};
pub use error::{Result, WhyNotError};
pub use ingest::Mutation;
pub use penalty::PenaltyModel;
pub use question::{
    AlgoStats, QuestionKernel, RefinedQuery, WhyNotAnswer, WhyNotContext, WhyNotQuestion,
};
pub use rank::{rank_of_set, SetRankOutcome};

pub use algorithms::{
    answer_advanced, answer_approx_advanced, answer_approx_basic, answer_approx_kcr, answer_basic,
    answer_basic_with_budget, answer_kcr, AdvancedOptions, KcrOptions,
};
