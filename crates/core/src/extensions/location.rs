//! Why-not answering via **location refinement**: keep the keywords and
//! preference, move the query location minimally so the missing objects
//! enter the result — the second future-work direction of §VIII.
//!
//! # Model
//!
//! A refined query `q' = (loc', doc₀, k', α)` must contain every missing
//! object; the penalty mirrors Eqn. 4 with the keyword term replaced by
//! the normalised displacement:
//!
//! ```text
//! Penalty(q, q') = λ·Δk/(R(M,q) − k₀) + (1−λ)·dist(loc₀, loc')/diagonal
//! ```
//!
//! # Status: principled heuristic
//!
//! Unlike α (one dimension, piecewise-linear scores), the optimal
//! location lives in a 2-D arrangement of bisector curves — the paper
//! leaves it as future work and no exact algorithm is attempted here.
//! The search evaluates a structured candidate set:
//!
//! * the original location (basic k-enlargement fallback),
//! * geometric subdivisions of the segments from `loc₀` towards each
//!   missing object and towards their centroid (moving towards `M`
//!   monotonically improves its distance term),
//! * each missing object's own location,
//!
//! then polishes the best candidate by golden-section search on its
//! segment. Every candidate is evaluated *exactly* (full rank
//! computation), so the returned refinement is always valid — only
//! optimality is heuristic.

use crate::error::Result;
use crate::question::{WhyNotContext, WhyNotQuestion};
use wnsk_geo::Point;
use wnsk_index::{Dataset, OrdF64, SpatialKeywordQuery};

/// A location-refined query answering a why-not question.
#[derive(Clone, Debug, PartialEq)]
pub struct LocationRefinement {
    /// The adapted query location.
    pub loc: Point,
    /// The refined result size `k'`.
    pub k: usize,
    /// `R(M, q')` under the refined query.
    pub rank: usize,
    /// Penalty as defined above.
    pub penalty: f64,
}

/// Finds a low-penalty location refinement. `subdivisions` controls how
/// densely each candidate segment is probed (≥ 1; 16 is a good default).
pub fn refine_location(
    dataset: &Dataset,
    question: &WhyNotQuestion,
    subdivisions: usize,
) -> Result<LocationRefinement> {
    assert!(subdivisions >= 1, "subdivisions must be at least 1");
    question.validate(dataset)?;
    let q = &question.query;
    let lambda = question.lambda;
    let diag = dataset.world().diagonal();

    let rank_at = |loc: Point| -> usize {
        let q2 = SpatialKeywordQuery::new(loc, q.doc.clone(), q.k, q.alpha);
        question
            .missing
            .iter()
            .map(|&m| dataset.rank_of(m, &q2))
            .max()
            .expect("validated non-empty")
    };

    let initial_rank = rank_at(q.loc);
    let ctx = WhyNotContext::new(dataset, question, initial_rank)?;
    let rank_norm = ctx.penalty.rank_norm() as f64;
    let penalty_of = |loc: Point, rank: usize| -> f64 {
        lambda * rank.saturating_sub(q.k) as f64 / rank_norm
            + (1.0 - lambda) * q.loc.dist(&loc) / diag
    };

    // Candidate anchors: each missing object and the centroid of M.
    let mut anchors: Vec<Point> = question
        .missing
        .iter()
        .map(|&m| dataset.object(m).loc)
        .collect();
    let centroid = Point::new(
        anchors.iter().map(|p| p.x).sum::<f64>() / anchors.len() as f64,
        anchors.iter().map(|p| p.y).sum::<f64>() / anchors.len() as f64,
    );
    anchors.push(centroid);

    let mut best = LocationRefinement {
        loc: q.loc,
        k: initial_rank,
        rank: initial_rank,
        penalty: lambda, // basic refinement: stay put, enlarge k.
    };
    let consider = |loc: Point, best: &mut LocationRefinement| {
        // Ordered pruning: the displacement part alone already loses.
        if (1.0 - lambda) * q.loc.dist(&loc) / diag >= best.penalty {
            return;
        }
        let rank = rank_at(loc);
        let penalty = penalty_of(loc, rank);
        if penalty < best.penalty {
            *best = LocationRefinement {
                loc,
                k: rank.max(q.k),
                rank,
                penalty,
            };
        }
    };

    for &anchor in &anchors {
        for i in 0..=subdivisions {
            let t = i as f64 / subdivisions as f64;
            let loc = Point::new(
                q.loc.x + t * (anchor.x - q.loc.x),
                q.loc.y + t * (anchor.y - q.loc.y),
            );
            consider(loc, &mut best);
        }
    }

    // Golden-section polish along the best segment (towards the anchor
    // nearest the current best location) on the *penalty* function.
    if best.loc != q.loc {
        let anchor = *anchors
            .iter()
            .min_by(|a, b| OrdF64::new(a.dist(&best.loc)).cmp(&OrdF64::new(b.dist(&best.loc))))
            .expect("anchors non-empty");
        let eval = |t: f64| -> f64 {
            let loc = Point::new(
                q.loc.x + t * (anchor.x - q.loc.x),
                q.loc.y + t * (anchor.y - q.loc.y),
            );
            penalty_of(loc, rank_at(loc))
        };
        let phi = (5f64.sqrt() - 1.0) / 2.0;
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        let mut x1 = hi - phi * (hi - lo);
        let mut x2 = lo + phi * (hi - lo);
        let (mut f1, mut f2) = (eval(x1), eval(x2));
        for _ in 0..24 {
            if f1 <= f2 {
                hi = x2;
                x2 = x1;
                f2 = f1;
                x1 = hi - phi * (hi - lo);
                f1 = eval(x1);
            } else {
                lo = x1;
                x1 = x2;
                f1 = f2;
                x2 = lo + phi * (hi - lo);
                f2 = eval(x2);
            }
        }
        let t = if f1 <= f2 { x1 } else { x2 };
        consider(
            Point::new(
                q.loc.x + t * (anchor.x - q.loc.x),
                q.loc.y + t * (anchor.y - q.loc.y),
            ),
            &mut best,
        );
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnsk_geo::WorldBounds;
    use wnsk_index::{ObjectId, SpatialObject};
    use wnsk_text::KeywordSet;

    fn dataset() -> Dataset {
        let t = |ids: &[u32]| KeywordSet::from_ids(ids.iter().copied());
        // m shares the query keywords but sits far away; decoys crowd the
        // original location.
        let objects = vec![
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.85, 0.85),
                doc: t(&[1]),
            }, // m
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.1, 0.1),
                doc: t(&[1]),
            },
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.12, 0.1),
                doc: t(&[1]),
            },
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.1, 0.12),
                doc: t(&[1]),
            },
        ];
        Dataset::new(objects, WorldBounds::unit())
    }

    fn question(k: usize, lambda: f64) -> WhyNotQuestion {
        WhyNotQuestion::new(
            SpatialKeywordQuery::new(Point::new(0.1, 0.1), KeywordSet::from_ids([1]), k, 0.5),
            vec![ObjectId(0)],
            lambda,
        )
    }

    #[test]
    fn refinement_revives_and_beats_baseline() {
        let ds = dataset();
        let question = question(1, 0.9);
        let r = refine_location(&ds, &question, 16).unwrap();
        assert!(r.penalty <= 0.9 + 1e-12, "never worse than the baseline");
        let q2 = SpatialKeywordQuery::new(
            r.loc,
            question.query.doc.clone(),
            question.query.k,
            question.query.alpha,
        );
        assert!(ds.rank_of(ObjectId(0), &q2) <= r.k);
        // With λ = 0.9 the k-enlargement is expensive; moving wins.
        assert!(r.penalty < 0.9);
        assert!(r.loc != question.query.loc);
    }

    #[test]
    fn baseline_kept_when_movement_is_penalised() {
        let ds = dataset();
        // λ tiny: enlarging k is almost free, movement dominated.
        let question = question(1, 0.01);
        let r = refine_location(&ds, &question, 16).unwrap();
        assert!((r.penalty - 0.01).abs() < 1e-9);
        assert_eq!(r.loc, question.query.loc);
        assert_eq!(r.k, ds.rank_of(ObjectId(0), &question.query));
    }

    #[test]
    fn moving_onto_the_missing_object_is_considered() {
        let ds = dataset();
        let question = question(1, 0.999);
        let r = refine_location(&ds, &question, 4).unwrap();
        // With movement nearly free, the search should at least match the
        // penalty of standing on m itself.
        let on_m = {
            let q2 = SpatialKeywordQuery::new(
                Point::new(0.85, 0.85),
                question.query.doc.clone(),
                1,
                0.5,
            );
            let rank = ds.rank_of(ObjectId(0), &q2);
            0.999 * rank.saturating_sub(1) as f64
                / (ds.rank_of(ObjectId(0), &question.query) - 1) as f64
                + 0.001 * question.query.loc.dist(&Point::new(0.85, 0.85)) / ds.world().diagonal()
        };
        assert!(r.penalty <= on_m + 1e-9);
    }

    #[test]
    fn multi_missing_revived_together() {
        let t = |ids: &[u32]| KeywordSet::from_ids(ids.iter().copied());
        let objects = vec![
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.8, 0.8),
                doc: t(&[1]),
            },
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.8, 0.9),
                doc: t(&[1]),
            },
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.1, 0.1),
                doc: t(&[1]),
            },
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.12, 0.1),
                doc: t(&[1]),
            },
        ];
        let ds = Dataset::new(objects, WorldBounds::unit());
        let question = WhyNotQuestion::new(
            SpatialKeywordQuery::new(Point::new(0.1, 0.1), t(&[1]), 1, 0.5),
            vec![ObjectId(0), ObjectId(1)],
            0.8,
        );
        let r = refine_location(&ds, &question, 16).unwrap();
        let q2 = SpatialKeywordQuery::new(r.loc, t(&[1]), r.k, 0.5);
        for &m in &question.missing {
            assert!(ds.rank_of(m, &q2) <= r.k);
        }
    }

    #[test]
    fn invalid_questions_rejected() {
        let ds = dataset();
        let q = SpatialKeywordQuery::new(Point::new(0.8, 0.8), KeywordSet::from_ids([1]), 1, 0.5);
        // m is the top-1 from this location.
        let question = WhyNotQuestion::new(q, vec![ObjectId(0)], 0.5);
        assert!(matches!(
            refine_location(&ds, &question, 8),
            Err(crate::WhyNotError::NotMissing { .. })
        ));
    }
}
