//! Why-not answering via **preference adaption**: keep the keywords,
//! adjust α (and, if needed, `k`) so the missing objects enter the
//! result — the model of the authors' earlier work (\[8\], ICDE 2015),
//! provided here as the first leg of the integrated framework.
//!
//! # Model
//!
//! A refined query `q' = (loc, doc₀, k', α')` must contain every missing
//! object; its penalty mirrors Eqn. 4 with the keyword term replaced by
//! the normalised preference shift:
//!
//! ```text
//! Penalty(q, q') = λ·Δk/(R(M,q) − k₀) + (1−λ)·|α' − α₀| / max(α₀, 1−α₀)
//! ```
//!
//! # Exactness
//!
//! With the keywords fixed, every object's score is **linear in α**:
//! `f_o(α) = ts_o + α·((1 − sd_o) − ts_o)`. The missing set's rank is
//! therefore piecewise constant in α, changing only where some object's
//! line crosses a missing object's line. On each plateau the penalty is
//! minimised at the endpoint nearest α₀, and at a crossing the tying
//! object is *not* a dominator (Eqn. 3 is strict) — so evaluating exactly
//! the crossing points (plus α₀) finds the global optimum. The search
//! enumerates candidates in increasing `|α' − α₀|` and stops as soon as
//! the preference penalty alone exceeds the best found, mirroring the
//! keyword algorithm's ordered enumeration.

use crate::error::Result;
use crate::question::{WhyNotContext, WhyNotQuestion};
use wnsk_index::{Dataset, OrdF64};

/// A preference-refined query answering a why-not question.
#[derive(Clone, Debug, PartialEq)]
pub struct AlphaRefinement {
    /// The adapted preference α'.
    pub alpha: f64,
    /// The refined result size `k'` (Lemma 1 applied to this model).
    pub k: usize,
    /// `R(M, q')` under the refined query.
    pub rank: usize,
    /// Penalty as defined above.
    pub penalty: f64,
}

/// Precomputed score-line coefficients: `f(α) = intercept + α·slope`.
#[derive(Clone, Copy)]
struct Line {
    intercept: f64,
    slope: f64,
}

/// Finds the optimal preference adaption for a why-not question.
///
/// Runs in `O(n·|M| + C·n)` where `C` is the number of candidate
/// crossings actually evaluated before the ordered early stop triggers
/// (worst case `O(n·|M|)` candidates). Scores are evaluated in memory —
/// this extension explains *preferences*, not disk behaviour.
pub fn refine_alpha(dataset: &Dataset, question: &WhyNotQuestion) -> Result<AlphaRefinement> {
    question.validate(dataset)?;
    let q = &question.query;
    let alpha0 = q.alpha;
    let lambda = question.lambda;

    // Score lines of every object w.r.t. the *initial* keywords.
    let lines: Vec<Line> = dataset
        .objects()
        .iter()
        .map(|o| {
            let sd = dataset.world().normalized_dist(&o.loc, &q.loc);
            let ts = q.sim.similarity(&o.doc, &q.doc);
            Line {
                intercept: ts,
                slope: (1.0 - sd) - ts,
            }
        })
        .collect();

    // R(M, α) for a given α, evaluated with the dataset's own scoring so
    // results are bit-identical to what any later verification computes.
    let rank_at = |alpha: f64| -> usize {
        let q_alpha = wnsk_index::SpatialKeywordQuery::new(q.loc, q.doc.clone(), q.k, alpha);
        question
            .missing
            .iter()
            .map(|&m| dataset.rank_of(m, &q_alpha))
            .max()
            .expect("validated non-empty")
    };

    let initial_rank = rank_at(alpha0);
    // Reuse the standard context for validation + the Δk normaliser.
    let ctx = WhyNotContext::new(dataset, question, initial_rank)?;
    let rank_norm = ctx.penalty.rank_norm() as f64;
    let alpha_norm = alpha0.max(1.0 - alpha0);
    let penalty_of = |alpha: f64, rank: usize| -> f64 {
        lambda * rank.saturating_sub(q.k) as f64 / rank_norm
            + (1.0 - lambda) * (alpha - alpha0).abs() / alpha_norm
    };

    // Candidate α values: α₀ plus every crossing of a missing object's
    // line with any other object's line, within (0, 1).
    let mut candidates: Vec<f64> = vec![alpha0];
    for m in &question.missing {
        let lm = lines[m.index()];
        for (i, lo) in lines.iter().enumerate() {
            if i == m.index() || !dataset.is_live(wnsk_index::ObjectId(i as u32)) {
                continue;
            }
            let denom = lo.slope - lm.slope;
            if denom.abs() < 1e-15 {
                continue;
            }
            let star = (lm.intercept - lo.intercept) / denom;
            // Probe the crossing and both sides: exactly at the crossing
            // the scores tie analytically, but floating-point evaluation
            // can land on either side, so the ε-offsets make the plateau
            // ranks robustly reachable.
            for cand in [star, star - 1e-9, star + 1e-9] {
                if cand > 1e-9 && cand < 1.0 - 1e-9 {
                    candidates.push(cand);
                }
            }
        }
    }
    candidates
        .sort_by(|a, b| OrdF64::new((a - alpha0).abs()).cmp(&OrdF64::new((b - alpha0).abs())));
    candidates.dedup_by(|a, b| (*a - *b).abs() < 1e-15);

    // Ordered evaluation with early stop on the preference penalty.
    let mut best = AlphaRefinement {
        alpha: alpha0,
        k: initial_rank,
        rank: initial_rank,
        penalty: lambda, // the basic refinement: keep α, enlarge k.
    };
    for alpha in candidates {
        if (1.0 - lambda) * (alpha - alpha0).abs() / alpha_norm >= best.penalty {
            break;
        }
        let rank = rank_at(alpha);
        let penalty = penalty_of(alpha, rank);
        if penalty < best.penalty {
            best = AlphaRefinement {
                alpha,
                k: rank.max(q.k),
                rank,
                penalty,
            };
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnsk_geo::{Point, WorldBounds};
    use wnsk_index::{ObjectId, SpatialKeywordQuery, SpatialObject};
    use wnsk_text::KeywordSet;

    fn dataset() -> Dataset {
        // Textually perfect but distant object vs close but irrelevant
        // ones: lowering α revives the former.
        let t = |ids: &[u32]| KeywordSet::from_ids(ids.iter().copied());
        let objects = vec![
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.9, 0.9),
                doc: t(&[1, 2]),
            }, // m
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.1, 0.1),
                doc: t(&[3]),
            },
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.15, 0.1),
                doc: t(&[4]),
            },
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.1, 0.15),
                doc: t(&[5]),
            },
        ];
        Dataset::new(objects, WorldBounds::unit())
    }

    fn question(alpha: f64, k: usize, lambda: f64) -> WhyNotQuestion {
        WhyNotQuestion::new(
            SpatialKeywordQuery::new(Point::new(0.1, 0.1), KeywordSet::from_ids([1, 2]), k, alpha),
            vec![ObjectId(0)],
            lambda,
        )
    }

    /// Brute-force optimum over a dense α grid for verification.
    fn grid_optimum(ds: &Dataset, question: &WhyNotQuestion) -> f64 {
        let q = &question.query;
        let alpha_norm = q.alpha.max(1.0 - q.alpha);
        let initial = ds.rank_of(question.missing[0], q);
        let rank_norm = (initial - q.k) as f64;
        let mut best = question.lambda;
        for i in 1..2000 {
            let alpha = i as f64 / 2000.0;
            let q2 = SpatialKeywordQuery::new(q.loc, q.doc.clone(), q.k, alpha);
            let rank = ds.rank_of(question.missing[0], &q2);
            let p = question.lambda * rank.saturating_sub(q.k) as f64 / rank_norm
                + (1.0 - question.lambda) * (alpha - q.alpha).abs() / alpha_norm;
            best = best.min(p);
        }
        best
    }

    #[test]
    fn lowering_alpha_revives_textual_match() {
        let ds = dataset();
        let question = question(0.9, 1, 0.5);
        let r = refine_alpha(&ds, &question).unwrap();
        assert!(r.alpha < 0.9, "expected a lower alpha, got {}", r.alpha);
        assert!(r.penalty < 0.5, "must beat the basic refinement");
        // Verify the refinement really revives m.
        let q2 =
            SpatialKeywordQuery::new(question.query.loc, question.query.doc.clone(), r.k, r.alpha);
        assert!(ds.rank_of(ObjectId(0), &q2) <= r.k);
    }

    #[test]
    fn matches_grid_search_optimum() {
        let ds = dataset();
        for (alpha, lambda) in [(0.9, 0.5), (0.95, 0.3), (0.85, 0.7)] {
            let question = question(alpha, 1, lambda);
            let exact = refine_alpha(&ds, &question).unwrap().penalty;
            let grid = grid_optimum(&ds, &question);
            assert!(
                exact <= grid + 1e-6,
                "alpha {alpha} lambda {lambda}: exact {exact} > grid {grid}"
            );
        }
    }

    #[test]
    fn random_instances_match_grid() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for case in 0..10 {
            let objects: Vec<SpatialObject> = (0..30)
                .map(|_| SpatialObject {
                    id: ObjectId(0),
                    loc: Point::new(rng.gen(), rng.gen()),
                    doc: KeywordSet::from_ids(
                        (0..rng.gen_range(1..4)).map(|_| rng.gen_range(0..8u32)),
                    ),
                })
                .collect();
            let ds = Dataset::new(objects, WorldBounds::unit());
            let q = SpatialKeywordQuery::new(
                Point::new(rng.gen(), rng.gen()),
                KeywordSet::from_ids([rng.gen_range(0..8u32)]),
                2,
                0.5,
            );
            let Some(missing) = ds
                .objects()
                .iter()
                .map(|o| o.id)
                .find(|&id| ds.rank_of(id, &q) > 2)
            else {
                continue;
            };
            let question = WhyNotQuestion::new(q, vec![missing], 0.5);
            let exact = refine_alpha(&ds, &question).unwrap().penalty;
            let grid = grid_optimum(&ds, &question);
            assert!(exact <= grid + 1e-6, "case {case}: {exact} > {grid}");
        }
    }

    #[test]
    fn already_present_is_rejected() {
        let ds = dataset();
        // With α small, m already ranks first.
        let question = question(0.05, 1, 0.5);
        assert!(matches!(
            refine_alpha(&ds, &question),
            Err(crate::WhyNotError::NotMissing { .. })
        ));
    }

    #[test]
    fn baseline_when_no_alpha_helps() {
        // The missing object is both far *and* textually worst: no α
        // revives it into the top-1 at lower cost than enlarging k
        // when λ is small.
        let t = |ids: &[u32]| KeywordSet::from_ids(ids.iter().copied());
        let objects = vec![
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.9, 0.9),
                doc: t(&[9]),
            }, // m
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.1, 0.1),
                doc: t(&[1]),
            },
        ];
        let ds = Dataset::new(objects, WorldBounds::unit());
        let question = WhyNotQuestion::new(
            SpatialKeywordQuery::new(Point::new(0.1, 0.1), t(&[1]), 1, 0.5),
            vec![ObjectId(0)],
            0.01,
        );
        let r = refine_alpha(&ds, &question).unwrap();
        // m is dominated at every α (the competitor is both closer and
        // more similar) — the only answer is the basic k-enlargement
        // with penalty λ.
        assert_eq!(r.alpha, 0.5);
        assert_eq!(r.k, 2);
        assert!((r.penalty - 0.01).abs() < 1e-12);
    }

    #[test]
    fn multi_missing_uses_worst_rank() {
        let ds = dataset();
        let question = WhyNotQuestion::new(
            SpatialKeywordQuery::new(Point::new(0.1, 0.1), KeywordSet::from_ids([1, 2]), 1, 0.9),
            vec![ObjectId(0), ObjectId(2)],
            0.5,
        );
        let r = refine_alpha(&ds, &question).unwrap();
        let q2 =
            SpatialKeywordQuery::new(question.query.loc, question.query.doc.clone(), r.k, r.alpha);
        for &m in &question.missing {
            assert!(ds.rank_of(m, &q2) <= r.k);
        }
    }
}
