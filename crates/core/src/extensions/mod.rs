//! Extensions beyond the paper's core contribution, covering its stated
//! future work (§VIII): answering why-not questions by refining the
//! *preference* α (the approach of the authors' earlier ICDE 2015 work,
//! reference \[8\]) and by refining the *query location*.
//!
//! Together with the keyword adaption of the main crate these form the
//! "integrated framework" the conclusion sketches: given one why-not
//! question, an application can compare the three refinement channels and
//! present whichever modification is cheapest for the user.

pub mod alpha;
pub mod location;

pub use alpha::{refine_alpha, AlphaRefinement};
pub use location::{refine_location, LocationRefinement};
