//! Query budgets and graceful degradation.
//!
//! A [`QueryBudget`] caps how long a why-not solver may run (wall-clock
//! deadline) and how many physical page reads it may issue. The solvers
//! check the budget at cooperative checkpoints (stream pulls, candidate
//! boundaries, queue pops); the first breach latches and every thread
//! observes it. An exhausted budget does **not** abort the query: the
//! solver falls back to the §VI-B sampling-based approximate algorithm
//! evaluated in memory, returning its best refined query tagged
//! [`AnswerQuality::Degraded`]. Only when even that fallback cannot
//! finish inside [`QueryBudget::fallback_grace`] does the query surface
//! [`WhyNotError::BudgetExhausted`](crate::WhyNotError::BudgetExhausted).
//!
//! The degradation ladder is therefore: exact answer → approximate
//! answer (degraded) → typed error. A degraded answer is still *sound*:
//! its refined query provably contains every missing object (Lemma 1's
//! `k' = max(k₀, R(M, q'))` covers the true rank).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wnsk_storage::BufferPool;

/// Resource limits for one why-not query. `Copy` so it can ride inside
/// the solver option structs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryBudget {
    /// Wall-clock deadline for the exact solver. `None` = unlimited.
    pub deadline: Option<Duration>,
    /// Maximum physical page reads through the index's buffer pool.
    /// `None` = unlimited.
    pub max_page_reads: Option<u64>,
    /// Extra wall-clock time the in-memory approximate fallback may use
    /// *after* the main budget is breached. The fallback touches no
    /// pages, so this is the only resource it consumes.
    pub fallback_grace: Duration,
}

impl Default for QueryBudget {
    fn default() -> Self {
        QueryBudget::unlimited()
    }
}

impl QueryBudget {
    /// No limits: solvers run to completion (the pre-budget behaviour).
    pub const fn unlimited() -> Self {
        QueryBudget {
            deadline: None,
            max_page_reads: None,
            fallback_grace: Duration::from_millis(250),
        }
    }

    /// Caps wall-clock time.
    pub const fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps physical page reads.
    pub const fn with_max_page_reads(mut self, max: u64) -> Self {
        self.max_page_reads = Some(max);
        self
    }

    /// Sets the fallback grace window.
    pub const fn with_fallback_grace(mut self, grace: Duration) -> Self {
        self.fallback_grace = grace;
        self
    }

    /// `true` when no limit is set (checkpoints become no-ops).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_page_reads.is_none()
    }
}

/// Why a query degraded to the approximate fallback.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DegradeReason {
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The physical page-read cap was hit.
    PageReadLimit,
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            DegradeReason::PageReadLimit => write!(f, "page-read limit reached"),
        }
    }
}

/// How trustworthy an answer is — which rung of the degradation ladder
/// produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnswerQuality {
    /// The solver examined the full candidate space: the answer is the
    /// optimum of Eqn. 4.
    Exact,
    /// The caller asked for the §VI-B sampling algorithm: only the
    /// `sample_size` highest-benefit candidates were examined.
    Approximate { sample_size: usize },
    /// The budget was exhausted mid-query; the answer comes from the
    /// in-memory approximate fallback seeded with the best refinement
    /// found before the breach.
    Degraded { reason: DegradeReason },
}

impl AnswerQuality {
    /// `true` for [`AnswerQuality::Exact`].
    pub fn is_exact(&self) -> bool {
        matches!(self, AnswerQuality::Exact)
    }

    /// `true` for [`AnswerQuality::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, AnswerQuality::Degraded { .. })
    }
}

impl std::fmt::Display for AnswerQuality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnswerQuality::Exact => write!(f, "exact"),
            AnswerQuality::Approximate { sample_size } => {
                write!(f, "approximate (sample of {sample_size})")
            }
            AnswerQuality::Degraded { reason } => write!(f, "degraded ({reason})"),
        }
    }
}

const BREACH_NONE: u8 = 0;
const BREACH_DEADLINE: u8 = 1;
const BREACH_PAGE_READS: u8 = 2;

/// Shared checkpoint state for one query: the budget, the query's start
/// time, the buffer pool whose physical reads are charged against
/// `max_page_reads`, and a sticky breach flag so every worker thread
/// stops at the first breach any of them observes.
pub struct BudgetGuard {
    budget: QueryBudget,
    start: Instant,
    pool: Arc<BufferPool>,
    reads_before: u64,
    breach: AtomicU8,
}

impl BudgetGuard {
    /// Starts the clock and snapshots the pool's read counter.
    pub fn new(budget: QueryBudget, pool: Arc<BufferPool>) -> Self {
        let reads_before = pool.stats().physical_reads;
        BudgetGuard {
            budget,
            start: Instant::now(),
            pool,
            reads_before,
            breach: AtomicU8::new(BREACH_NONE),
        }
    }

    /// The budget being enforced.
    pub fn budget(&self) -> &QueryBudget {
        &self.budget
    }

    /// Cooperative checkpoint: returns the breach reason once the budget
    /// is exhausted, `None` while within budget. The first breach
    /// latches — later calls return it without re-measuring.
    pub fn check(&self) -> Option<DegradeReason> {
        if let Some(b) = self.breached() {
            return Some(b);
        }
        if self.budget.is_unlimited() {
            return None;
        }
        if let Some(deadline) = self.budget.deadline {
            if self.start.elapsed() >= deadline {
                self.breach.store(BREACH_DEADLINE, Ordering::Release);
                return Some(DegradeReason::DeadlineExceeded);
            }
        }
        if let Some(max) = self.budget.max_page_reads {
            let reads = self
                .pool
                .stats()
                .physical_reads
                .saturating_sub(self.reads_before);
            if reads >= max {
                self.breach.store(BREACH_PAGE_READS, Ordering::Release);
                return Some(DegradeReason::PageReadLimit);
            }
        }
        None
    }

    /// Reads the sticky flag without measuring anything — cheap enough
    /// for per-object loops.
    pub fn breached(&self) -> Option<DegradeReason> {
        match self.breach.load(Ordering::Acquire) {
            BREACH_DEADLINE => Some(DegradeReason::DeadlineExceeded),
            BREACH_PAGE_READS => Some(DegradeReason::PageReadLimit),
            _ => None,
        }
    }

    /// Wall-clock time since the guard was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnsk_storage::MemBackend;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::with_default_config(Arc::new(MemBackend::new())))
    }

    #[test]
    fn unlimited_budget_never_breaches() {
        let guard = BudgetGuard::new(QueryBudget::unlimited(), pool());
        assert_eq!(guard.check(), None);
        assert_eq!(guard.breached(), None);
    }

    #[test]
    fn zero_deadline_breaches_immediately_and_latches() {
        let budget = QueryBudget::unlimited().with_deadline(Duration::ZERO);
        let guard = BudgetGuard::new(budget, pool());
        assert_eq!(guard.check(), Some(DegradeReason::DeadlineExceeded));
        assert_eq!(guard.breached(), Some(DegradeReason::DeadlineExceeded));
        assert_eq!(guard.check(), Some(DegradeReason::DeadlineExceeded));
    }

    #[test]
    fn page_read_limit_counts_only_this_query() {
        let p = pool();
        // Pre-existing traffic must not count against the budget.
        let id = p.allocate().unwrap();
        p.write(id, &[1]).unwrap();
        p.clear_cache();
        p.read(id).unwrap();

        let budget = QueryBudget::unlimited().with_max_page_reads(2);
        let guard = BudgetGuard::new(budget, Arc::clone(&p));
        assert_eq!(guard.check(), None);
        p.clear_cache();
        p.read(id).unwrap();
        assert_eq!(guard.check(), None, "1 read < limit 2");
        p.clear_cache();
        p.read(id).unwrap();
        assert_eq!(guard.check(), Some(DegradeReason::PageReadLimit));
    }

    #[test]
    fn builders_compose() {
        let b = QueryBudget::unlimited()
            .with_deadline(Duration::from_millis(5))
            .with_max_page_reads(100)
            .with_fallback_grace(Duration::from_millis(1));
        assert_eq!(b.deadline, Some(Duration::from_millis(5)));
        assert_eq!(b.max_page_reads, Some(100));
        assert_eq!(b.fallback_grace, Duration::from_millis(1));
        assert!(!b.is_unlimited());
        assert!(QueryBudget::default().is_unlimited());
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            DegradeReason::DeadlineExceeded.to_string(),
            "deadline exceeded"
        );
        assert!(AnswerQuality::Approximate { sample_size: 16 }
            .to_string()
            .contains("16"));
        assert!(AnswerQuality::Degraded {
            reason: DegradeReason::PageReadLimit
        }
        .to_string()
        .contains("degraded"));
        assert!(AnswerQuality::Exact.is_exact());
        assert!(!AnswerQuality::Exact.is_degraded());
    }
}
