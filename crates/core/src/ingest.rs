//! The durable mutation path: a [`Mutation`] codec over the write-ahead
//! log, crash recovery, and the dataset epoch that keys cache
//! invalidation.
//!
//! Durable state is the base dataset plus the committed WAL prefix. The
//! engine applies every mutation — live or replayed — through the same
//! [`WhyNotEngine::apply`](crate::WhyNotEngine::apply) code path, and all
//! index maintenance is deterministic, so recovery rebuilds exactly the
//! state a never-crashed engine holds: same trees, same epoch, same
//! answers.

use wnsk_geo::Point;
use wnsk_index::{payload, ObjectId};
use wnsk_storage::codec::{Reader, Writer};
use wnsk_storage::{Result, StorageError};
use wnsk_text::KeywordSet;

/// WAL record kind for [`Mutation::Insert`].
pub const KIND_INSERT: u8 = 1;
/// WAL record kind for [`Mutation::Remove`].
pub const KIND_REMOVE: u8 = 2;
/// WAL record kind for [`Mutation::UpdateDoc`].
pub const KIND_UPDATE_DOC: u8 = 3;

/// One logical change to the dataset, as logged and replayed.
///
/// Inserts carry no object id: ids are assigned densely at apply time,
/// which is deterministic because the WAL fixes the apply order.
#[derive(Clone, Debug, PartialEq)]
pub enum Mutation {
    /// Add a new object; the dataset assigns the next id.
    Insert { loc: Point, doc: KeywordSet },
    /// Tombstone an existing object (ids are never reused).
    Remove { id: ObjectId },
    /// Replace an object's keyword set in place.
    UpdateDoc { id: ObjectId, doc: KeywordSet },
}

impl Mutation {
    /// The WAL record kind tag for this mutation.
    pub fn kind(&self) -> u8 {
        match self {
            Mutation::Insert { .. } => KIND_INSERT,
            Mutation::Remove { .. } => KIND_REMOVE,
            Mutation::UpdateDoc { .. } => KIND_UPDATE_DOC,
        }
    }

    /// Serializes the mutation payload (the kind travels separately in
    /// the record header).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(32);
        match self {
            Mutation::Insert { loc, doc } => {
                w.write_f64(loc.x);
                w.write_f64(loc.y);
                w.write_bytes(&payload::encode_keyword_set(doc));
            }
            Mutation::Remove { id } => {
                w.write_u32(id.0);
            }
            Mutation::UpdateDoc { id, doc } => {
                w.write_u32(id.0);
                w.write_bytes(&payload::encode_keyword_set(doc));
            }
        }
        w.into_vec()
    }

    /// Decodes a mutation from its WAL record `kind` and `payload`.
    pub fn decode(kind: u8, bytes: &[u8]) -> Result<Mutation> {
        let mut r = Reader::new(bytes, "wal mutation payload");
        match kind {
            KIND_INSERT => {
                let loc = Point::new(r.read_f64()?, r.read_f64()?);
                let rest = r.remaining();
                let doc = payload::decode_keyword_set(r.read_bytes(rest)?)?;
                Ok(Mutation::Insert { loc, doc })
            }
            KIND_REMOVE => Ok(Mutation::Remove {
                id: ObjectId(r.read_u32()?),
            }),
            KIND_UPDATE_DOC => {
                let id = ObjectId(r.read_u32()?);
                let rest = r.remaining();
                let doc = payload::decode_keyword_set(r.read_bytes(rest)?)?;
                Ok(Mutation::UpdateDoc { id, doc })
            }
            other => Err(StorageError::corrupt(
                "wal mutation payload",
                format!("unknown mutation kind {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn mutation_roundtrip() {
        let cases = vec![
            Mutation::Insert {
                loc: Point::new(0.25, 0.75),
                doc: doc(&[3, 1, 7]),
            },
            Mutation::Remove { id: ObjectId(42) },
            Mutation::UpdateDoc {
                id: ObjectId(7),
                doc: doc(&[0]),
            },
        ];
        for m in cases {
            let back = Mutation::decode(m.kind(), &m.encode()).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn unknown_kind_is_corrupt() {
        let err = Mutation::decode(99, &[]).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }));
    }
}
