use std::fmt;
use wnsk_index::ObjectId;

/// Errors surfaced by the why-not query layer.
#[derive(Debug)]
pub enum WhyNotError {
    /// The storage substrate failed (I/O, corruption).
    Storage(wnsk_storage::StorageError),
    /// The why-not question has no missing objects.
    EmptyMissingSet,
    /// A missing object id does not exist in the dataset.
    UnknownObject(ObjectId),
    /// The "missing" object already appears in the initial result, so
    /// there is nothing to explain (`R(M, q) ≤ k₀` makes Eqn. 4's Δk
    /// normaliser vanish).
    NotMissing { object: ObjectId, rank: usize },
    /// The same object was listed twice in the missing set.
    DuplicateMissing(ObjectId),
    /// The query budget ran out and even the approximate fallback could
    /// not finish inside its grace window. Degradation normally returns
    /// an answer tagged [`AnswerQuality::Degraded`](crate::AnswerQuality);
    /// this error is the last rung of the ladder.
    BudgetExhausted { reason: crate::DegradeReason },
}

impl fmt::Display for WhyNotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WhyNotError::Storage(e) => write!(f, "storage error: {e}"),
            WhyNotError::EmptyMissingSet => {
                write!(f, "why-not question must name at least one missing object")
            }
            WhyNotError::UnknownObject(id) => {
                write!(f, "missing object {id:?} does not exist in the dataset")
            }
            WhyNotError::NotMissing { object, rank } => write!(
                f,
                "object {object:?} is not missing: it ranks {rank} within the initial top-k"
            ),
            WhyNotError::DuplicateMissing(id) => {
                write!(f, "object {id:?} listed twice in the missing set")
            }
            WhyNotError::BudgetExhausted { reason } => write!(
                f,
                "query budget exhausted ({reason}) and the approximate fallback \
                 could not finish within its grace window"
            ),
        }
    }
}

impl std::error::Error for WhyNotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WhyNotError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wnsk_storage::StorageError> for WhyNotError {
    fn from(e: wnsk_storage::StorageError) -> Self {
        WhyNotError::Storage(e)
    }
}

/// Result alias for why-not operations.
pub type Result<T> = std::result::Result<T, WhyNotError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(WhyNotError::EmptyMissingSet
            .to_string()
            .contains("at least one"));
        assert!(WhyNotError::NotMissing {
            object: ObjectId(3),
            rank: 2
        }
        .to_string()
        .contains("o3"));
        assert!(WhyNotError::UnknownObject(ObjectId(9))
            .to_string()
            .contains("o9"));
    }

    #[test]
    fn storage_error_conversion() {
        use std::error::Error;
        let e: WhyNotError = wnsk_storage::StorageError::corrupt("node", "oops").into();
        assert!(e.source().is_some());
    }
}
