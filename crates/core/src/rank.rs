//! Rank-of-set scans: computing `R(M, q') = max_i R(m_i, q')` with one
//! pass over an [`ObjectStream`], with optional early stop.

use crate::budget::{BudgetGuard, DegradeReason};
use crate::error::Result;
use wnsk_index::{ObjectId, ObjectStream};

/// How often a scan re-measures its [`BudgetGuard`] (stream pulls between
/// checkpoints). Sized so the clock/counter reads stay invisible next to
/// the page I/O the pulls themselves cause.
pub(crate) const BUDGET_CHECK_INTERVAL: usize = 64;

/// How a rank-of-set scan terminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetRankOutcome {
    /// The exact `R(M, q')`.
    Exact { rank: usize },
    /// Aborted: the rank provably exceeds the supplied bound after seeing
    /// this many dominators.
    Aborted { seen_dominators: usize },
    /// The query budget was exhausted mid-scan; the rank is unknown.
    Breached { reason: DegradeReason },
}

impl SetRankOutcome {
    /// The exact rank, if the scan completed.
    pub fn rank(&self) -> Option<usize> {
        match self {
            SetRankOutcome::Exact { rank } => Some(*rank),
            SetRankOutcome::Aborted { .. } | SetRankOutcome::Breached { .. } => None,
        }
    }
}

/// Computes `R(M, q')` by pulling a score-ordered stream.
///
/// `R(M, q')` equals the rank of the *worst-scoring* missing object, i.e.
/// one plus the number of objects scoring strictly above
/// `min_i ST(m_i, q')`.
///
/// * `targets` — `(id, exact score)` of every missing object under `q'`.
/// * `max_rank` — early stop (Eqn. 6): abort as soon as the rank provably
///   exceeds it.
/// * `until_found` — when `true`, emulate the basic algorithm and keep
///   pulling until every missing object has been *retrieved* (§IV-B);
///   when `false`, stop as soon as the stream's scores drop to the
///   worst missing score (same result, fewer pulls).
/// * `guard` — cooperative budget checkpoint, measured every
///   `BUDGET_CHECK_INTERVAL` (64) pulls; a breach returns
///   [`SetRankOutcome::Breached`].
pub fn rank_of_set(
    stream: &mut dyn ObjectStream,
    targets: &[(ObjectId, f64)],
    max_rank: Option<usize>,
    until_found: bool,
    guard: Option<&BudgetGuard>,
) -> Result<SetRankOutcome> {
    assert!(!targets.is_empty(), "rank_of_set needs at least one target");
    let min_score = targets
        .iter()
        .map(|&(_, s)| s)
        .fold(f64::INFINITY, f64::min);
    let mut remaining: Vec<ObjectId> = targets.iter().map(|&(id, _)| id).collect();
    let mut dominators = 0usize;
    let mut pulls = 0usize;
    loop {
        if let Some(guard) = guard {
            if pulls.is_multiple_of(BUDGET_CHECK_INTERVAL) {
                if let Some(reason) = guard.check() {
                    return Ok(SetRankOutcome::Breached { reason });
                }
            }
            pulls += 1;
        }
        if let Some(max_rank) = max_rank {
            if dominators + 1 > max_rank {
                return Ok(SetRankOutcome::Aborted {
                    seen_dominators: dominators,
                });
            }
        }
        match stream.next_object().map_err(crate::WhyNotError::Storage)? {
            None => break,
            Some((id, score)) => {
                if score > min_score {
                    dominators += 1;
                    // A better-scoring missing object is also retrieved.
                    remaining.retain(|&t| t != id);
                } else if until_found {
                    remaining.retain(|&t| t != id);
                    if remaining.is_empty() {
                        break;
                    }
                } else {
                    break;
                }
            }
        }
    }
    Ok(SetRankOutcome::Exact {
        rank: dominators + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A canned stream for unit tests.
    struct VecStream {
        items: std::vec::IntoIter<(ObjectId, f64)>,
    }

    impl VecStream {
        fn new(items: Vec<(u32, f64)>) -> Self {
            VecStream {
                items: items
                    .into_iter()
                    .map(|(id, s)| (ObjectId(id), s))
                    .collect::<Vec<_>>()
                    .into_iter(),
            }
        }
    }

    impl ObjectStream for VecStream {
        fn next_object(&mut self) -> wnsk_storage::Result<Option<(ObjectId, f64)>> {
            Ok(self.items.next())
        }
    }

    #[test]
    fn single_target_rank() {
        let mut s = VecStream::new(vec![(1, 0.9), (2, 0.8), (3, 0.5), (4, 0.4)]);
        let out = rank_of_set(&mut s, &[(ObjectId(3), 0.5)], None, false, None).unwrap();
        assert_eq!(out.rank(), Some(3));
    }

    #[test]
    fn multi_target_rank_is_worst() {
        // targets score 0.8 (rank 2) and 0.5 (rank 3) → R(M) = 3.
        let mut s = VecStream::new(vec![(1, 0.9), (2, 0.8), (3, 0.5), (4, 0.4)]);
        let out = rank_of_set(
            &mut s,
            &[(ObjectId(2), 0.8), (ObjectId(3), 0.5)],
            None,
            false,
            None,
        )
        .unwrap();
        assert_eq!(out.rank(), Some(3));
    }

    #[test]
    fn better_scoring_target_counts_as_dominator_of_worst() {
        // Object 2 (missing, 0.8) dominates the worst missing (0.5).
        let mut s = VecStream::new(vec![(2, 0.8), (3, 0.5)]);
        let out = rank_of_set(
            &mut s,
            &[(ObjectId(2), 0.8), (ObjectId(3), 0.5)],
            None,
            true,
            None,
        )
        .unwrap();
        assert_eq!(out.rank(), Some(2));
    }

    #[test]
    fn until_found_scans_past_ties() {
        // Three objects tie at 0.5; the target is emitted last among them.
        let mut s = VecStream::new(vec![(1, 0.9), (2, 0.5), (3, 0.5), (4, 0.5)]);
        let out = rank_of_set(&mut s, &[(ObjectId(4), 0.5)], None, true, None).unwrap();
        assert_eq!(out.rank(), Some(2), "ties are not dominators");
    }

    #[test]
    fn early_stop_aborts() {
        let mut s = VecStream::new((0..100).map(|i| (i, 1.0 - i as f64 / 200.0)).collect());
        let out = rank_of_set(&mut s, &[(ObjectId(99), 0.0)], Some(10), false, None).unwrap();
        assert_eq!(
            out,
            SetRankOutcome::Aborted {
                seen_dominators: 10
            }
        );
    }

    #[test]
    fn early_stop_exact_when_rank_within() {
        let mut s = VecStream::new(vec![(1, 0.9), (2, 0.8), (3, 0.5)]);
        let out = rank_of_set(&mut s, &[(ObjectId(3), 0.5)], Some(3), false, None).unwrap();
        assert_eq!(out.rank(), Some(3));
    }

    #[test]
    fn breached_budget_stops_the_scan() {
        use crate::QueryBudget;
        use std::sync::Arc;
        use std::time::Duration;
        let pool = Arc::new(wnsk_storage::BufferPool::with_default_config(Arc::new(
            wnsk_storage::MemBackend::new(),
        )));
        let guard = BudgetGuard::new(QueryBudget::unlimited().with_deadline(Duration::ZERO), pool);
        let mut s = VecStream::new(vec![(1, 0.9), (2, 0.8)]);
        let out = rank_of_set(&mut s, &[(ObjectId(2), 0.8)], None, false, Some(&guard)).unwrap();
        assert_eq!(
            out,
            SetRankOutcome::Breached {
                reason: DegradeReason::DeadlineExceeded
            }
        );
        assert_eq!(out.rank(), None);
    }

    #[test]
    fn exhausted_stream_gives_rank() {
        let mut s = VecStream::new(vec![(1, 0.9)]);
        // Target never appears with until_found — stream ends; rank is
        // still 1 + dominators.
        let out = rank_of_set(&mut s, &[(ObjectId(5), 0.95)], None, true, None).unwrap();
        assert_eq!(out.rank(), Some(1));
    }
}
