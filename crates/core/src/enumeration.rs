//! Candidate keyword-set enumeration (§IV-C2) and greedy sampling
//! (§VI-B).
//!
//! A candidate `doc'` is obtained from `doc₀` by applying a subset of
//! *edit operations*: deleting a term of `doc₀` or inserting a term of
//! `M.doc − doc₀` (only keywords of the missing objects are worth
//! inserting — §IV-B/§VI-A). Each operation carries a *benefit* derived
//! from Eqn. 7's particularity: inserting term `t` contributes
//! `+Parti(M, t)`, deleting it contributes `−Parti(M, t)` — so edits that
//! make the query more characteristic of the missing objects score high.
//!
//! The ordered enumeration walks candidates in increasing edit distance
//! (lower keyword penalty first) and, inside a layer, in decreasing
//! benefit; the sampler picks the `T` candidates with the highest total
//! benefit across *all* layers using a k-best subset-sum heap.

use crate::question::WhyNotContext;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wnsk_index::OrdF64;
use wnsk_text::{KeywordSet, TermId};

/// One candidate refined keyword set.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    pub doc: KeywordSet,
    /// Number of edit operations applied (= `Δdoc` of Eqn. 4).
    pub edit_distance: usize,
    /// Total particularity benefit of the applied edits.
    pub benefit: f64,
}

#[derive(Clone, Debug)]
struct EditOp {
    term: TermId,
    is_insert: bool,
    /// Benefit of applying this operation.
    weight: f64,
}

/// Generates candidate keyword sets for one why-not question.
pub struct CandidateEnumerator {
    doc0: KeywordSet,
    ops: Vec<EditOp>,
}

impl CandidateEnumerator {
    /// Builds the enumerator from a question context.
    pub fn new(ctx: &WhyNotContext<'_>) -> Self {
        let corpus = ctx.dataset.corpus();
        let missing_docs: Vec<&KeywordSet> = ctx.missing.iter().map(|m| &m.doc).collect();
        let mut ops = Vec::new();
        for t in ctx.query.doc.iter() {
            let parti = corpus.particularity_multi(missing_docs.iter().copied(), t);
            ops.push(EditOp {
                term: t,
                is_insert: false,
                weight: -parti,
            });
        }
        for t in ctx.missing_doc.difference(&ctx.query.doc).iter() {
            let parti = corpus.particularity_multi(missing_docs.iter().copied(), t);
            ops.push(EditOp {
                term: t,
                is_insert: true,
                weight: parti,
            });
        }
        CandidateEnumerator {
            doc0: ctx.query.doc.clone(),
            ops,
        }
    }

    /// Test/bench constructor from explicit parts: `(term, is_insert,
    /// weight)` triples.
    pub fn from_parts(doc0: KeywordSet, ops: Vec<(TermId, bool, f64)>) -> Self {
        CandidateEnumerator {
            doc0,
            ops: ops
                .into_iter()
                .map(|(term, is_insert, weight)| EditOp {
                    term,
                    is_insert,
                    weight,
                })
                .collect(),
        }
    }

    /// The maximum possible edit distance, `|doc₀ ∪ M.doc|`.
    pub fn max_edit_distance(&self) -> usize {
        self.ops.len()
    }

    /// Total number of non-trivial candidates (`2^n − 1`).
    pub fn total_candidates(&self) -> u64 {
        if self.ops.len() >= 64 {
            u64::MAX
        } else {
            (1u64 << self.ops.len()) - 1
        }
    }

    fn candidate_from_mask(&self, mask: u64) -> Candidate {
        let mut deleted = Vec::new();
        let mut inserted = Vec::new();
        let mut benefit = 0.0;
        for (i, op) in self.ops.iter().enumerate() {
            if mask & (1 << i) != 0 {
                benefit += op.weight;
                if op.is_insert {
                    inserted.push(op.term);
                } else {
                    deleted.push(op.term);
                }
            }
        }
        let doc = self
            .doc0
            .difference(&KeywordSet::from_terms(deleted))
            .union(&KeywordSet::from_terms(inserted));
        Candidate {
            doc,
            edit_distance: mask.count_ones() as usize,
            benefit,
        }
    }

    /// All candidates with exactly `d` edits. When `ordered` is set they
    /// are sorted by descending benefit (ties broken by the op mask for
    /// determinism) — the §IV-C2 ordering.
    pub fn layer(&self, d: usize, ordered: bool) -> Vec<Candidate> {
        assert!(d >= 1 && d <= self.ops.len(), "layer out of range");
        let mut out = Vec::new();
        let mut masks = Vec::new();
        combination_masks(self.ops.len(), d, &mut masks);
        for mask in masks {
            out.push((mask, self.candidate_from_mask(mask)));
        }
        if ordered {
            out.sort_by(|a, b| {
                OrdF64::new(b.1.benefit)
                    .cmp(&OrdF64::new(a.1.benefit))
                    .then(a.0.cmp(&b.0))
            });
        }
        out.into_iter().map(|(_, c)| c).collect()
    }

    /// Every candidate, grouped by ascending edit distance (the basic
    /// algorithm's exhaustive enumeration).
    pub fn all(&self, ordered: bool) -> Vec<Candidate> {
        let mut out = Vec::new();
        for d in 1..=self.ops.len() {
            out.extend(self.layer(d, ordered));
        }
        out
    }

    /// The §VI-B greedy sample: the `t` candidates with the highest total
    /// benefit across all edit distances, in descending benefit order.
    ///
    /// Uses a k-best subset-sum enumeration: start from the subset of all
    /// positive-weight operations and explore deviations in increasing
    /// benefit loss.
    pub fn sample_top(&self, t: usize) -> Vec<Candidate> {
        assert!(
            self.ops.len() < 63,
            "sampling supports up to 62 edit operations"
        );
        let n = self.ops.len();
        if n == 0 || t == 0 {
            return Vec::new();
        }
        // Sort op indices by |weight| ascending: deviation costs.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            OrdF64::new(self.ops[a].weight.abs())
                .cmp(&OrdF64::new(self.ops[b].weight.abs()))
                .then(a.cmp(&b))
        });
        let cost: Vec<f64> = order.iter().map(|&i| self.ops[i].weight.abs()).collect();
        let best_mask: u64 = (0..n)
            .filter(|&i| self.ops[i].weight > 0.0)
            .map(|i| 1u64 << i)
            .sum();

        let mut out = Vec::with_capacity(t);
        let push_candidate = |mask: u64, out: &mut Vec<Candidate>| {
            if mask != 0 {
                out.push(self.candidate_from_mask(mask));
            }
        };
        push_candidate(best_mask, &mut out);

        // Heap of deviation states: (loss, deepest toggled position,
        // toggled set in `order` space).
        let mut heap: BinaryHeap<Reverse<(OrdF64, u64)>> = BinaryHeap::new();
        let mut meta: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        heap.push(Reverse((OrdF64::new(cost[0]), 1u64 << 0)));
        meta.insert(1u64 << 0, 0);
        while out.len() < t {
            let Some(Reverse((loss, toggled))) = heap.pop() else {
                break;
            };
            let last = meta[&toggled];
            // Map the toggle set back to op-index space and apply it.
            let mut mask = best_mask;
            for (pos, &op_idx) in order.iter().enumerate() {
                if toggled & (1 << pos) != 0 {
                    mask ^= 1 << op_idx;
                }
            }
            push_candidate(mask, &mut out);
            if last + 1 < n {
                // Extend: also toggle the next position.
                let ext = toggled | (1 << (last + 1));
                meta.insert(ext, last + 1);
                heap.push(Reverse((OrdF64::new(loss.0 + cost[last + 1]), ext)));
                // Replace: move the deepest toggle one position further.
                let rep = (toggled & !(1 << last)) | (1 << (last + 1));
                meta.insert(rep, last + 1);
                heap.push(Reverse((
                    OrdF64::new(loss.0 - cost[last] + cost[last + 1]),
                    rep,
                )));
            }
        }
        out.truncate(t);
        out
    }
}

/// Writes every `n`-bit mask with exactly `d` set bits into `out`, in
/// ascending numeric order.
fn combination_masks(n: usize, d: usize, out: &mut Vec<u64>) {
    assert!(n < 64 && d >= 1 && d <= n);
    let mut idx: Vec<usize> = (0..d).collect();
    loop {
        let mask: u64 = idx.iter().map(|&i| 1u64 << i).sum();
        out.push(mask);
        // Advance to the next combination (standard odometer): bump the
        // rightmost index that has room, reset everything after it.
        let Some(i) = (0..d).rev().find(|&i| idx[i] < i + n - d) else {
            return;
        };
        idx[i] += 1;
        for j in i + 1..d {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enumerator() -> CandidateEnumerator {
        // doc0 = {1, 2}; insertable = {3}. Weights: deleting 1 is good
        // (+0.5), deleting 2 is bad (−0.7), inserting 3 is good (+1.0).
        CandidateEnumerator::from_parts(
            KeywordSet::from_ids([1, 2]),
            vec![
                (TermId(1), false, 0.5),
                (TermId(2), false, -0.7),
                (TermId(3), true, 1.0),
            ],
        )
    }

    #[test]
    fn totals() {
        let e = enumerator();
        assert_eq!(e.max_edit_distance(), 3);
        assert_eq!(e.total_candidates(), 7);
        assert_eq!(e.all(false).len(), 7);
    }

    #[test]
    fn layer_sizes_are_binomial() {
        let e = enumerator();
        assert_eq!(e.layer(1, false).len(), 3);
        assert_eq!(e.layer(2, false).len(), 3);
        assert_eq!(e.layer(3, false).len(), 1);
    }

    #[test]
    fn candidates_apply_edits() {
        let e = enumerator();
        let all = e.all(false);
        // Deleting both and inserting 3 → {3}.
        assert!(all
            .iter()
            .any(|c| c.doc == KeywordSet::from_ids([3]) && c.edit_distance == 3));
        // Single insert → {1, 2, 3}.
        assert!(all
            .iter()
            .any(|c| c.doc == KeywordSet::from_ids([1, 2, 3]) && c.edit_distance == 1));
        // Empty set is reachable by deleting everything (d = 2).
        assert!(all.iter().any(|c| c.doc.is_empty() && c.edit_distance == 2));
    }

    #[test]
    fn ordered_layer_sorts_by_benefit() {
        let e = enumerator();
        let layer1 = e.layer(1, true);
        // insert 3 (1.0) > delete 1 (0.5) > delete 2 (−0.7).
        assert_eq!(layer1[0].doc, KeywordSet::from_ids([1, 2, 3]));
        assert_eq!(layer1[1].doc, KeywordSet::from_ids([2]));
        assert_eq!(layer1[2].doc, KeywordSet::from_ids([1]));
        assert!(layer1.windows(2).all(|w| w[0].benefit >= w[1].benefit));
    }

    #[test]
    fn sample_top_orders_globally_by_benefit() {
        let e = enumerator();
        let sample = e.sample_top(7);
        assert_eq!(sample.len(), 7);
        assert!(
            sample.windows(2).all(|w| w[0].benefit >= w[1].benefit),
            "benefits: {:?}",
            sample.iter().map(|c| c.benefit).collect::<Vec<_>>()
        );
        // Best = apply both positive ops: delete 1, insert 3 → {2, 3}.
        assert_eq!(sample[0].doc, KeywordSet::from_ids([2, 3]));
        assert!((sample[0].benefit - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sample_matches_exhaustive_ranking() {
        let e = enumerator();
        let mut all = e.all(false);
        all.sort_by(|a, b| OrdF64::new(b.benefit).cmp(&OrdF64::new(a.benefit)));
        let sample = e.sample_top(3);
        for (s, a) in sample.iter().zip(all.iter()) {
            assert!((s.benefit - a.benefit).abs() < 1e-12);
        }
    }

    #[test]
    fn sample_smaller_than_space() {
        let e = enumerator();
        assert_eq!(e.sample_top(2).len(), 2);
        assert_eq!(e.sample_top(100).len(), 7, "capped at the space size");
        assert!(e.sample_top(0).is_empty());
    }

    #[test]
    fn sample_excludes_the_unmodified_query() {
        let e = enumerator();
        for c in e.sample_top(7) {
            assert!(c.edit_distance >= 1);
        }
    }

    #[test]
    fn combination_masks_enumerate_choose() {
        let mut masks = Vec::new();
        combination_masks(5, 2, &mut masks);
        assert_eq!(masks.len(), 10);
        assert!(masks.iter().all(|m| m.count_ones() == 2));
        let unique: std::collections::HashSet<_> = masks.iter().collect();
        assert_eq!(unique.len(), 10);
    }

    #[test]
    fn combination_masks_full_and_single() {
        let mut masks = Vec::new();
        combination_masks(4, 4, &mut masks);
        assert_eq!(masks, vec![0b1111]);
        masks.clear();
        combination_masks(4, 1, &mut masks);
        assert_eq!(masks.len(), 4);
    }
}
