//! Dataset generation parameters and the EURO/GN presets.

/// Parameters of a synthetic spatio-textual dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Human-readable name (appears in experiment output).
    pub name: String,
    /// Number of objects.
    pub n_objects: usize,
    /// Vocabulary size (distinct terms available to the Zipf sampler).
    pub vocab_size: usize,
    /// Inclusive range of keywords per object.
    pub doc_len: (usize, usize),
    /// Zipf skew exponent for term frequencies (≈1 matches natural
    /// language / POI category distributions).
    pub zipf_exponent: f64,
    /// Number of spatial clusters ("cities").
    pub clusters: usize,
    /// Standard deviation of each Gaussian cluster (unit-square units).
    pub cluster_sigma: f64,
    /// Fraction of objects placed uniformly instead of in clusters.
    pub uniform_fraction: f64,
    /// RNG seed — generation is fully deterministic.
    pub seed: u64,
}

impl DatasetSpec {
    /// EURO-like preset (§VII-A2: 162,033 objects, 35,315 terms) at a
    /// given scale factor; `scale = 1.0` reproduces the paper's
    /// cardinalities.
    pub fn euro_like(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        DatasetSpec {
            name: format!("EURO-like(x{scale})"),
            n_objects: ((162_033.0 * scale) as usize).max(100),
            vocab_size: ((35_315.0 * scale) as usize).max(50),
            // Kept short enough that the exhaustive BS baseline stays
            // tractable for the multi-missing experiment (its candidate
            // space is 2^|doc₀ ∪ M.doc|).
            doc_len: (2, 6),
            zipf_exponent: 1.0,
            clusters: 40,
            cluster_sigma: 0.02,
            uniform_fraction: 0.15,
            seed: 0xE0B0,
        }
    }

    /// GN-like preset (§VII-A2: 1,868,821 objects, 222,407 terms) at a
    /// given scale factor.
    pub fn gn_like(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        DatasetSpec {
            name: format!("GN-like(x{scale})"),
            n_objects: ((1_868_821.0 * scale) as usize).max(100),
            vocab_size: ((222_407.0 * scale) as usize).max(50),
            doc_len: (1, 6),
            zipf_exponent: 1.05,
            clusters: 120,
            cluster_sigma: 0.015,
            uniform_fraction: 0.25,
            seed: 0x6E06,
        }
    }

    /// A tiny preset for unit tests and doc examples.
    pub fn tiny(seed: u64) -> Self {
        DatasetSpec {
            name: "tiny".into(),
            n_objects: 300,
            vocab_size: 60,
            doc_len: (1, 5),
            zipf_exponent: 1.0,
            clusters: 4,
            cluster_sigma: 0.05,
            uniform_fraction: 0.2,
            seed,
        }
    }

    /// Overrides the seed, keeping everything else.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the object count, keeping everything else (used by the
    /// scalability experiment, Fig. 13).
    pub fn with_objects(mut self, n: usize) -> Self {
        self.n_objects = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_linearly() {
        let e = DatasetSpec::euro_like(0.1);
        assert_eq!(e.n_objects, 16_203);
        assert_eq!(e.vocab_size, 3_531);
        let g = DatasetSpec::gn_like(0.01);
        assert_eq!(g.n_objects, 18_688);
    }

    #[test]
    fn full_scale_matches_paper_table2() {
        let e = DatasetSpec::euro_like(1.0);
        assert_eq!(e.n_objects, 162_033);
        assert_eq!(e.vocab_size, 35_315);
        let g = DatasetSpec::gn_like(1.0);
        assert_eq!(g.n_objects, 1_868_821);
        assert_eq!(g.vocab_size, 222_407);
    }

    #[test]
    fn builders_override() {
        let s = DatasetSpec::tiny(1).with_seed(9).with_objects(42);
        assert_eq!(s.seed, 9);
        assert_eq!(s.n_objects, 42);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        DatasetSpec::euro_like(0.0);
    }
}
