//! The dataset generator: Gaussian-mixture locations + Zipf documents.

use crate::spec::DatasetSpec;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wnsk_geo::{Point, WorldBounds};
use wnsk_index::{Dataset, ObjectId, SpatialObject};
use wnsk_text::{KeywordSet, TermId, Vocabulary};

/// A generated dataset plus its vocabulary (term id → synthetic word).
pub struct GeneratedData {
    pub dataset: Dataset,
    pub vocabulary: Vocabulary,
    pub spec: DatasetSpec,
}

impl GeneratedData {
    /// Average keywords per object (Table II-style statistics).
    pub fn avg_doc_len(&self) -> f64 {
        let total: usize = self.dataset.objects().iter().map(|o| o.doc.len()).sum();
        total as f64 / self.dataset.len().max(1) as f64
    }

    /// Number of distinct terms actually used by some object.
    pub fn used_vocab(&self) -> usize {
        (0..self.vocabulary.len() as u32)
            .filter(|&t| self.dataset.corpus().doc_freq(TermId(t)) > 0)
            .count()
    }
}

/// Generates a dataset per `spec`. Fully deterministic for a given spec
/// (including its seed).
pub fn generate(spec: &DatasetSpec) -> GeneratedData {
    assert!(spec.n_objects > 0, "dataset must have at least one object");
    assert!(spec.vocab_size > 0, "vocabulary must be non-empty");
    assert!(
        spec.doc_len.0 >= 1 && spec.doc_len.0 <= spec.doc_len.1,
        "doc_len range must be non-empty and start at ≥1"
    );
    assert!(
        spec.doc_len.1 <= spec.vocab_size,
        "doc_len exceeds vocabulary"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Synthetic vocabulary: pseudo-words, rank order = popularity order.
    let mut vocabulary = Vocabulary::new();
    for i in 0..spec.vocab_size {
        // Bounded by spec.vocab_size, which the asserts above keep sane;
        // synthetic generation is the one caller allowed to treat overflow
        // as a programming error.
        vocabulary
            .intern(&synthetic_word(i))
            .expect("synthetic vocabulary fits in u32 term ids");
    }

    // Cluster centers ("cities").
    let centers: Vec<Point> = (0..spec.clusters.max(1))
        .map(|_| Point::new(rng.gen(), rng.gen()))
        .collect();

    let zipf = Zipf::new(spec.vocab_size, spec.zipf_exponent);
    let mut objects = Vec::with_capacity(spec.n_objects);
    for _ in 0..spec.n_objects {
        let loc = if rng.gen::<f64>() < spec.uniform_fraction {
            Point::new(rng.gen(), rng.gen())
        } else {
            let c = centers[rng.gen_range(0..centers.len())];
            Point::new(
                (c.x + gaussian(&mut rng) * spec.cluster_sigma).clamp(0.0, 1.0),
                (c.y + gaussian(&mut rng) * spec.cluster_sigma).clamp(0.0, 1.0),
            )
        };
        let len = rng.gen_range(spec.doc_len.0..=spec.doc_len.1);
        let mut terms = Vec::with_capacity(len);
        // Rejection-sample distinct terms; vocabulary ≫ doc length so
        // this terminates quickly.
        while terms.len() < len {
            let t = TermId(zipf.sample(&mut rng) as u32);
            if !terms.contains(&t) {
                terms.push(t);
            }
        }
        objects.push(SpatialObject {
            id: ObjectId(0),
            loc,
            doc: KeywordSet::from_terms(terms),
        });
    }

    GeneratedData {
        dataset: Dataset::new(objects, WorldBounds::unit()),
        vocabulary,
        spec: spec.clone(),
    }
}

/// Box–Muller standard normal.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Pronounceable-ish deterministic pseudo-word for term rank `i`.
fn synthetic_word(i: usize) -> String {
    const CONS: &[u8] = b"bcdfgklmnprstvz";
    const VOWS: &[u8] = b"aeiou";
    let mut n = i;
    let mut w = String::new();
    loop {
        w.push(CONS[n % CONS.len()] as char);
        n /= CONS.len();
        w.push(VOWS[n % VOWS.len()] as char);
        n /= VOWS.len();
        if n == 0 {
            break;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::tiny(42);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.dataset.len(), b.dataset.len());
        for (x, y) in a.dataset.objects().iter().zip(b.dataset.objects()) {
            assert_eq!(x.loc, y.loc);
            assert_eq!(x.doc, y.doc);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&DatasetSpec::tiny(1));
        let b = generate(&DatasetSpec::tiny(2));
        let same = a
            .dataset
            .objects()
            .iter()
            .zip(b.dataset.objects())
            .filter(|(x, y)| x.loc == y.loc)
            .count();
        assert!(same < a.dataset.len() / 10);
    }

    #[test]
    fn spec_is_respected() {
        let spec = DatasetSpec::tiny(3);
        let g = generate(&spec);
        assert_eq!(g.dataset.len(), spec.n_objects);
        assert_eq!(g.vocabulary.len(), spec.vocab_size);
        for o in g.dataset.objects() {
            assert!(o.doc.len() >= spec.doc_len.0 && o.doc.len() <= spec.doc_len.1);
            assert!((0.0..=1.0).contains(&o.loc.x));
            assert!((0.0..=1.0).contains(&o.loc.y));
            for t in o.doc.iter() {
                assert!((t.0 as usize) < spec.vocab_size);
            }
        }
    }

    #[test]
    fn term_frequencies_are_skewed() {
        let g = generate(&DatasetSpec::tiny(4));
        let corpus = g.dataset.corpus();
        let f0 = corpus.doc_freq(TermId(0));
        let f_tail = corpus.doc_freq(TermId(50));
        assert!(
            f0 > 3 * f_tail.max(1),
            "expected Zipf skew, got head {f0} vs tail {f_tail}"
        );
    }

    #[test]
    fn locations_are_clustered() {
        // Average nearest-cluster-center distance must be far below the
        // uniform expectation.
        let spec = DatasetSpec {
            uniform_fraction: 0.0,
            ..DatasetSpec::tiny(5)
        };
        let g = generate(&spec);
        // Reconstruct the centers by re-running the generator's RNG is
        // fragile; instead check pairwise clustering: the mean distance to
        // the nearest other object should be tiny compared to uniform.
        let objs = g.dataset.objects();
        let mut total_nn = 0.0;
        for (i, o) in objs.iter().enumerate().take(100) {
            let mut best = f64::INFINITY;
            for (j, p) in objs.iter().enumerate() {
                if i != j {
                    best = best.min(o.loc.dist(&p.loc));
                }
            }
            total_nn += best;
        }
        let mean_nn = total_nn / 100.0;
        // Uniform 300 points in the unit square → mean NN ≈ 0.5/√300 ≈ 0.029.
        assert!(mean_nn < 0.02, "mean NN distance {mean_nn} not clustered");
    }

    #[test]
    fn synthetic_words_are_unique() {
        let words: std::collections::HashSet<String> = (0..10_000).map(synthetic_word).collect();
        assert_eq!(words.len(), 10_000);
    }

    #[test]
    fn vocabulary_maps_back() {
        let g = generate(&DatasetSpec::tiny(6));
        let t = g.dataset.objects()[0].doc.terms()[0];
        assert!(g.vocabulary.name(t).is_some());
    }

    #[test]
    fn table2_statistics_helpers() {
        let g = generate(&DatasetSpec::tiny(7));
        assert!(g.avg_doc_len() >= 1.0 && g.avg_doc_len() <= 5.0);
        assert!(g.used_vocab() <= g.vocabulary.len());
        assert!(g.used_vocab() > 10);
    }
}
