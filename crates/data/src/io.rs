//! Plain-text dataset import/export.
//!
//! The original EURO and GN snapshots cannot be redistributed, but anyone
//! holding them (or any other spatio-textual corpus) can run the library
//! on the real data through this format — one object per line:
//!
//! ```text
//! # comment / blank lines ignored
//! <x> <y> <keyword>[,<keyword>...]
//! ```
//!
//! Coordinates are arbitrary `f64`s; world bounds are inferred from the
//! data. Keywords are free-form tokens (no commas or whitespace).

use std::io::{BufRead, Write};
use wnsk_geo::Point;
use wnsk_index::{Dataset, ObjectId, SpatialObject};
use wnsk_text::{KeywordSet, Vocabulary};

/// Errors raised while parsing a dataset file.
#[derive(Debug)]
pub enum ParseError {
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and a description.
    Malformed {
        line: usize,
        reason: String,
    },
    /// The file contained no objects.
    Empty,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseError::Empty => write!(f, "dataset file contains no objects"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads a dataset from the line format above.
pub fn read_dataset<R: BufRead>(reader: R) -> Result<(Dataset, Vocabulary), ParseError> {
    let mut vocab = Vocabulary::new();
    let mut objects = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let x: f64 = parse_coord(parts.next(), line_no, "x")?;
        let y: f64 = parse_coord(parts.next(), line_no, "y")?;
        let words = parts.next().ok_or_else(|| ParseError::Malformed {
            line: line_no,
            reason: "missing keyword list".into(),
        })?;
        if parts.next().is_some() {
            return Err(ParseError::Malformed {
                line: line_no,
                reason: "trailing tokens after the keyword list".into(),
            });
        }
        let terms: Vec<_> = words
            .split(',')
            .filter(|w| !w.is_empty())
            .map(|w| {
                vocab.intern(w).map_err(|e| ParseError::Malformed {
                    line: line_no,
                    reason: e.to_string(),
                })
            })
            .collect::<Result<_, _>>()?;
        if terms.is_empty() {
            return Err(ParseError::Malformed {
                line: line_no,
                reason: "object must have at least one keyword".into(),
            });
        }
        objects.push(SpatialObject {
            id: ObjectId(0),
            loc: Point::new(x, y),
            doc: KeywordSet::from_terms(terms),
        });
    }
    if objects.is_empty() {
        return Err(ParseError::Empty);
    }
    // Non-empty by the check above, so world-bounds inference cannot fail.
    let dataset = Dataset::with_inferred_world(objects).map_err(|_| ParseError::Empty)?;
    Ok((dataset, vocab))
}

fn parse_coord(tok: Option<&str>, line: usize, which: &str) -> Result<f64, ParseError> {
    let tok = tok.ok_or_else(|| ParseError::Malformed {
        line,
        reason: format!("missing {which} coordinate"),
    })?;
    let v: f64 = tok.parse().map_err(|_| ParseError::Malformed {
        line,
        reason: format!("bad {which} coordinate '{tok}'"),
    })?;
    if !v.is_finite() {
        return Err(ParseError::Malformed {
            line,
            reason: format!("{which} coordinate must be finite"),
        });
    }
    Ok(v)
}

/// Writes a dataset in the same format (stable: `read ∘ write` is the
/// identity up to object order and world-bounds inference).
pub fn write_dataset<W: Write>(
    mut writer: W,
    dataset: &Dataset,
    vocab: &Vocabulary,
) -> std::io::Result<()> {
    writeln!(writer, "# whynot-sk dataset: {} objects", dataset.len())?;
    for o in dataset.objects() {
        let words: Vec<&str> = o.doc.iter().map(|t| vocab.name(t).unwrap_or("?")).collect();
        writeln!(writer, "{} {} {}", o.loc.x, o.loc.y, words.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;
    use std::io::Cursor;

    #[test]
    fn parses_valid_input() {
        let input = "# header\n\n0.1 0.2 hotel,clean\n0.5 0.5 cafe\n";
        let (ds, vocab) = read_dataset(Cursor::new(input)).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(vocab.len(), 3);
        assert!(ds
            .object(ObjectId(0))
            .doc
            .contains(vocab.get("hotel").unwrap()));
        assert_eq!(ds.object(ObjectId(1)).loc, Point::new(0.5, 0.5));
    }

    #[test]
    fn negative_and_scientific_coordinates() {
        let input = "-12.5 1e-3 poi\n";
        let (ds, _) = read_dataset(Cursor::new(input)).unwrap();
        assert_eq!(ds.object(ObjectId(0)).loc, Point::new(-12.5, 0.001));
    }

    #[test]
    fn rejects_malformed_lines() {
        for (input, needle) in [
            ("0.1 hotel", "bad y"),
            ("0.1", "missing y"),
            ("a 0.2 hotel", "bad x"),
            ("0.1 0.2", "missing keyword"),
            ("0.1 0.2 hotel extra", "trailing"),
            ("0.1 0.2 ,", "at least one keyword"),
            ("inf 0.2 hotel", "finite"),
        ] {
            let err = read_dataset(Cursor::new(input)).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "input {input:?}: expected {needle:?} in {err}"
            );
        }
    }

    #[test]
    fn empty_file_rejected() {
        assert!(matches!(
            read_dataset(Cursor::new("# nothing\n")),
            Err(ParseError::Empty)
        ));
    }

    #[test]
    fn error_reports_line_number() {
        let input = "0.1 0.2 ok\nbroken line here more\n";
        match read_dataset(Cursor::new(input)) {
            Err(ParseError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_preserves_objects() {
        let g = crate::generate(&DatasetSpec::tiny(31));
        let mut buf = Vec::new();
        write_dataset(&mut buf, &g.dataset, &g.vocabulary).unwrap();
        let (ds2, vocab2) = read_dataset(Cursor::new(&buf)).unwrap();
        assert_eq!(ds2.len(), g.dataset.len());
        for (a, b) in g.dataset.objects().iter().zip(ds2.objects()) {
            assert_eq!(a.loc, b.loc);
            // Term ids may differ; compare rendered words.
            let words = |doc: &KeywordSet, v: &Vocabulary| -> Vec<String> {
                doc.iter().map(|t| v.name(t).unwrap().to_string()).collect()
            };
            let mut wa = words(&a.doc, &g.vocabulary);
            let mut wb = words(&b.doc, &vocab2);
            wa.sort();
            wb.sort();
            assert_eq!(wa, wb);
        }
    }
}
