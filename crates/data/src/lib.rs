//! Synthetic spatio-textual datasets and why-not workloads.
//!
//! The paper evaluates on two real datasets — EURO (162,033 points of
//! interest in Europe, 35,315 distinct words) and GN (1,868,821 US
//! geographic names, 222,407 distinct words) — that are not
//! redistributable. This crate substitutes seeded synthetic generators
//! matched on the statistics the algorithms are sensitive to:
//!
//! * **cardinality and vocabulary size** — configurable, with presets
//!   matching both datasets at any scale factor;
//! * **term-frequency skew** — POI category terms are heavily skewed;
//!   terms are drawn from a Zipf distribution ([`zipf`]);
//! * **spatial clustering** — POIs cluster around cities; locations come
//!   from a Gaussian-mixture over the unit square;
//! * **document lengths** — uniform in a small range, as in POI data.
//!
//! [`workload`] generates the paper's query/missing-object workloads
//! (e.g. "the missing object is the one ranked `5·k₀+1` under the
//! initial query", §VII-A3).

pub mod affinity;
pub mod io;
pub mod spec;
pub mod workload;
pub mod zipf;

mod generator;

pub use generator::{generate, GeneratedData};
pub use spec::DatasetSpec;
