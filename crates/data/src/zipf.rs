//! A seeded Zipf sampler over term ranks.
//!
//! Term `r` (0-based rank) is drawn with probability proportional to
//! `1/(r+1)^s`. Implemented with a precomputed CDF and binary search —
//! O(vocab) setup, O(log vocab) per sample — which is exact and fast
//! enough for the paper-scale vocabularies (~222k terms).

use rand::Rng;

/// A Zipf distribution over `{0, 1, …, n−1}`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one outcome");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating error excluding the last rank.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if the distribution has a single outcome.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn skew_favors_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should be roughly 2× rank 1 and far above rank 100.
        assert!(counts[0] > counts[1]);
        assert!(counts[0] > 10 * counts[100].max(1));
        // Harmonic mass check: top-10 ranks carry ≈ H(10)/H(1000) ≈ 39%.
        let top10: u32 = counts[..10].iter().sum();
        assert!((0.3..0.5).contains(&(top10 as f64 / 100_000.0)));
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((4000..6000).contains(&c), "non-uniform counts: {counts:?}");
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let z = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn single_outcome() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
