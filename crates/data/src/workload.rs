//! Why-not workload generation matching §VII-A3.
//!
//! The paper's default workload: random initial queries with a given
//! number of keywords, and the missing object chosen as the one ranked
//! `5·k₀ + 1` under the initial query (or a specific rank, Fig. 8, or
//! random ranks in a band, Fig. 9).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wnsk_geo::Point;
use wnsk_index::{Dataset, ObjectId, OrdF64, SpatialKeywordQuery};
use wnsk_text::KeywordSet;

/// A generated why-not workload item: the initial query plus missing
/// objects at controlled ranks.
#[derive(Clone, Debug)]
pub struct WorkloadItem {
    pub query: SpatialKeywordQuery,
    pub missing: Vec<ObjectId>,
}

/// Workload generation parameters.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Keywords per initial query.
    pub n_keywords: usize,
    /// Initial `k₀`.
    pub k: usize,
    /// Ranking preference α.
    pub alpha: f64,
    /// Target rank of the (single) missing object; the paper's default is
    /// `5·k₀ + 1`.
    pub missing_rank: usize,
    /// Number of missing objects. 1 picks exactly `missing_rank`; more
    /// picks random distinct ranks in `(k, missing_rank]` (Fig. 9 uses
    /// ranks 11–51).
    pub n_missing: usize,
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's default workload: `k₀ = 10`, 4 keywords, α = 0.5,
    /// missing object at rank `5·k₀+1 = 51`.
    pub fn paper_default(seed: u64) -> Self {
        WorkloadSpec {
            n_keywords: 4,
            k: 10,
            alpha: 0.5,
            missing_rank: 51,
            n_missing: 1,
            seed,
        }
    }
}

/// Generates one workload item over `dataset`, or `None` when the random
/// draw cannot satisfy the spec (e.g. the target rank is deeper than the
/// dataset).
///
/// Queries are anchored at a random object so that the keywords are
/// realistic: the query location is near the anchor and the keywords mix
/// the anchor's terms with other objects' terms.
pub fn generate_item(dataset: &Dataset, spec: &WorkloadSpec) -> Option<WorkloadItem> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    for _attempt in 0..50 {
        if let Some(item) = try_generate(dataset, spec, &mut rng) {
            return Some(item);
        }
    }
    None
}

fn try_generate(dataset: &Dataset, spec: &WorkloadSpec, rng: &mut StdRng) -> Option<WorkloadItem> {
    if dataset.len() <= spec.missing_rank {
        return None;
    }
    let anchor = dataset.object(ObjectId(rng.gen_range(0..dataset.len() as u32)));
    let loc = Point::new(
        (anchor.loc.x + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0),
        (anchor.loc.y + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0),
    );
    // Keywords: some of the anchor's terms, padded with terms from other
    // random objects until the requested count is reached.
    let mut terms: Vec<_> = anchor.doc.iter().collect();
    while terms.len() < spec.n_keywords {
        let other = dataset.object(ObjectId(rng.gen_range(0..dataset.len() as u32)));
        for t in other.doc.iter() {
            if !terms.contains(&t) {
                terms.push(t);
                break;
            }
        }
    }
    terms.truncate(spec.n_keywords);
    let query = SpatialKeywordQuery::new(loc, KeywordSet::from_terms(terms), spec.k, spec.alpha);

    // Rank every object once (brute force — workload generation is not a
    // measured path).
    let mut scored: Vec<(ObjectId, f64)> = dataset
        .objects()
        .iter()
        .map(|o| (o.id, dataset.score(o, &query)))
        .collect();
    scored.sort_by(|a, b| OrdF64::new(b.1).cmp(&OrdF64::new(a.1)).then(a.0.cmp(&b.0)));

    let strict_rank = |idx: usize| -> usize {
        // Convert a sorted position to Eqn. 3's tie-aware rank.
        let score = scored[idx].1;
        scored.partition_point(|&(_, s)| s > score) + 1
    };

    let mut missing = Vec::new();
    if spec.n_missing == 1 {
        // The object at sorted position missing_rank−1, but only when its
        // tie-aware rank is exact (skip degenerate tie plateaus).
        let idx = spec.missing_rank - 1;
        if strict_rank(idx) != spec.missing_rank {
            return None;
        }
        missing.push(scored[idx].0);
    } else {
        let lo = spec.k; // positions k..missing_rank (0-based)
        let hi = spec.missing_rank.min(scored.len());
        if hi - lo < spec.n_missing {
            return None;
        }
        let mut tries = 0;
        while missing.len() < spec.n_missing && tries < 500 {
            tries += 1;
            let idx = rng.gen_range(lo..hi);
            let id = scored[idx].0;
            if strict_rank(idx) > spec.k && !missing.contains(&id) {
                missing.push(id);
            }
        }
        if missing.len() < spec.n_missing {
            return None;
        }
    }
    Some(WorkloadItem { query, missing })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;

    fn dataset() -> wnsk_index::Dataset {
        crate::generate(&DatasetSpec::tiny(11)).dataset
    }

    #[test]
    fn default_item_has_target_rank() {
        let ds = dataset();
        let spec = WorkloadSpec {
            missing_rank: 21,
            k: 4,
            ..WorkloadSpec::paper_default(5)
        };
        let item = generate_item(&ds, &spec).expect("workload must generate");
        assert_eq!(item.missing.len(), 1);
        assert_eq!(ds.rank_of(item.missing[0], &item.query), 21);
        assert_eq!(item.query.doc.len(), 4);
        assert_eq!(item.query.k, 4);
    }

    #[test]
    fn multi_missing_ranks_in_band() {
        let ds = dataset();
        let spec = WorkloadSpec {
            n_missing: 3,
            missing_rank: 40,
            k: 5,
            ..WorkloadSpec::paper_default(9)
        };
        let item = generate_item(&ds, &spec).expect("workload must generate");
        assert_eq!(item.missing.len(), 3);
        let unique: std::collections::HashSet<_> = item.missing.iter().collect();
        assert_eq!(unique.len(), 3);
        for &m in &item.missing {
            let r = ds.rank_of(m, &item.query);
            assert!(r > 5 && r <= 41, "rank {r} outside band");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = dataset();
        let spec = WorkloadSpec {
            missing_rank: 15,
            k: 3,
            ..WorkloadSpec::paper_default(42)
        };
        let a = generate_item(&ds, &spec).unwrap();
        let b = generate_item(&ds, &spec).unwrap();
        assert_eq!(a.missing, b.missing);
        assert_eq!(a.query.doc, b.query.doc);
    }

    #[test]
    fn impossible_rank_returns_none() {
        let ds = dataset();
        let spec = WorkloadSpec {
            missing_rank: 10_000,
            ..WorkloadSpec::paper_default(1)
        };
        assert!(generate_item(&ds, &spec).is_none());
    }

    #[test]
    fn keywords_are_realistic() {
        // At least one query keyword should be reasonably frequent in the
        // corpus (anchored generation, not random noise).
        let ds = dataset();
        let spec = WorkloadSpec {
            missing_rank: 21,
            k: 4,
            ..WorkloadSpec::paper_default(17)
        };
        let item = generate_item(&ds, &spec).unwrap();
        assert!(item.query.doc.iter().any(|t| ds.corpus().doc_freq(t) >= 1));
    }
}
