//! Keyword-affinity statistics for the deterministic shard partitioner.
//!
//! The sharded serving tier (crate `wnsk-shard`) clusters objects by
//! *keyword affinity* before splitting spatially: each object is
//! anchored to its most selective term (the one with the lowest
//! document frequency), term groups are packed onto shards, and objects
//! with no usable anchor fall back to a spatial stripe. This module
//! holds the dataset-level statistics that drive that plan — kept here,
//! next to the generators, so workload tooling can inspect the same
//! numbers the partitioner sees.

use std::collections::BTreeMap;
use wnsk_geo::{Point, WorldBounds};
use wnsk_index::Dataset;
use wnsk_text::{KeywordSet, TermId};

/// Document frequency of every term over the *live* objects: how many
/// documents contain the term. Deterministic (a `BTreeMap` in term-id
/// order) so plans derived from it are reproducible.
pub fn doc_frequencies(dataset: &Dataset) -> BTreeMap<TermId, usize> {
    let mut freq: BTreeMap<TermId, usize> = BTreeMap::new();
    for o in dataset.live_objects() {
        for t in o.doc.iter() {
            *freq.entry(t).or_insert(0) += 1;
        }
    }
    freq
}

/// The anchor term of a document: the contained term with the lowest
/// document frequency (most selective), ties broken by the smaller term
/// id. `None` for an empty document or when no term appears in `freq`.
pub fn anchor_term(doc: &KeywordSet, freq: &BTreeMap<TermId, usize>) -> Option<TermId> {
    doc.iter()
        .filter_map(|t| freq.get(&t).map(|&f| (f, t)))
        .min_by_key(|&(f, t)| (f, t.0))
        .map(|(_, t)| t)
}

/// The spatial fallback: the vertical stripe (of `stripes` equal-width
/// stripes over the world rectangle) containing `loc`, clamped into
/// range. Used for objects without an anchor term.
pub fn spatial_stripe(world: &WorldBounds, loc: &Point, stripes: usize) -> usize {
    let stripes = stripes.max(1);
    let rect = world.rect();
    let width = rect.width();
    if width <= 0.0 {
        return 0;
    }
    let x_norm = ((loc.x - rect.min.x) / width).clamp(0.0, 1.0);
    ((x_norm * stripes as f64) as usize).min(stripes - 1)
}

/// SplitMix64 over `seed ^ x`: the partitioner's deterministic
/// tie-break hash (no RNG state, fully reproducible from the seed).
pub fn splitmix64(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnsk_index::{ObjectId, SpatialObject};

    fn tiny() -> Dataset {
        let objects = vec![
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.1, 0.1),
                doc: KeywordSet::from_ids([0, 1]),
            },
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.9, 0.2),
                doc: KeywordSet::from_ids([1, 2]),
            },
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(0.5, 0.8),
                doc: KeywordSet::from_ids([1]),
            },
        ];
        Dataset::new(objects, WorldBounds::unit())
    }

    #[test]
    fn doc_frequencies_count_documents_not_occurrences() {
        let ds = tiny();
        let freq = doc_frequencies(&ds);
        assert_eq!(freq[&TermId(0)], 1);
        assert_eq!(freq[&TermId(1)], 3);
        assert_eq!(freq[&TermId(2)], 1);
    }

    #[test]
    fn anchor_prefers_the_rarest_term_then_the_smallest_id() {
        let ds = tiny();
        let freq = doc_frequencies(&ds);
        // {0,1}: term 0 (freq 1) beats term 1 (freq 3).
        assert_eq!(
            anchor_term(&KeywordSet::from_ids([0, 1]), &freq),
            Some(TermId(0))
        );
        // {0,2}: both freq 1 — smaller id wins.
        assert_eq!(
            anchor_term(&KeywordSet::from_ids([0, 2]), &freq),
            Some(TermId(0))
        );
        assert_eq!(anchor_term(&KeywordSet::empty(), &freq), None);
        // A term unseen in the corpus anchors nowhere.
        assert_eq!(anchor_term(&KeywordSet::from_ids([99]), &freq), None);
    }

    #[test]
    fn spatial_stripe_partitions_the_world() {
        let world = WorldBounds::unit();
        assert_eq!(spatial_stripe(&world, &Point::new(0.0, 0.5), 4), 0);
        assert_eq!(spatial_stripe(&world, &Point::new(0.26, 0.5), 4), 1);
        assert_eq!(spatial_stripe(&world, &Point::new(0.99, 0.5), 4), 3);
        // The right edge clamps into the last stripe.
        assert_eq!(spatial_stripe(&world, &Point::new(1.0, 0.5), 4), 3);
        assert_eq!(spatial_stripe(&world, &Point::new(0.7, 0.5), 1), 0);
    }

    #[test]
    fn splitmix64_is_deterministic_and_seed_sensitive() {
        assert_eq!(splitmix64(7, 42), splitmix64(7, 42));
        assert_ne!(splitmix64(7, 42), splitmix64(8, 42));
        assert_ne!(splitmix64(7, 42), splitmix64(7, 43));
    }
}
