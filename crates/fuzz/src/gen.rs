//! Seeded case generation: one `u64` → one [`FuzzCase`], deterministic
//! across runs and machines (the generator only draws from `StdRng`).
//!
//! The distributions are deliberately adversarial for this problem:
//! small vocabularies force keyword collisions, duplicated locations
//! force score ties, empty documents exercise the Jaccard edge cases,
//! and small `k` against small datasets makes `k > live objects`
//! reachable once the mutation script has removed a few rows.

use crate::case::{CaseFault, CaseMutation, CaseObject, CaseQuery, FuzzCase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Vocabulary for generated term ids — small on purpose.
pub const VOCAB: u32 = 24;

/// Seeds are stored as JSON numbers, so keep them within `f64`'s exact
/// integer range.
const SEED_MASK: u64 = (1 << 53) - 1;

/// Derives the `index`-th per-case seed from the run seed — a splitmix64
/// step, masked to 53 bits so the case file round-trips exactly.
pub fn case_seed(run_seed: u64, index: u64) -> u64 {
    let mut z = run_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) & SEED_MASK
}

fn random_doc(rng: &mut StdRng, allow_empty: bool) -> Vec<u32> {
    let lo = usize::from(!allow_empty);
    let n = rng.gen_range(lo..=5);
    (0..n).map(|_| rng.gen_range(0..VOCAB)).collect()
}

/// Generates the case for one seed. Infallible and total: every seed
/// yields a structurally well-formed case, though not every case yields
/// a *valid* why-not question (the harness reports those as `Invalid`,
/// which is itself a covered code path).
pub fn generate_case(seed: u64) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_objects = rng.gen_range(20..=120);
    let mut objects: Vec<CaseObject> = Vec::with_capacity(n_objects);
    for i in 0..n_objects {
        // ~10% duplicate an earlier location exactly — ties in the
        // spatial component are where ordering bugs hide.
        let (x, y) = if i > 0 && rng.gen_range(0..10u32) == 0 {
            let j = rng.gen_range(0..i);
            (objects[j].x, objects[j].y)
        } else {
            (rng.gen::<f64>(), rng.gen::<f64>())
        };
        // ~5% empty docs.
        let allow_empty = rng.gen_range(0..20u32) == 0;
        let doc = random_doc(&mut rng, allow_empty);
        objects.push(CaseObject { x, y, doc });
    }

    let k = rng.gen_range(1..=8);
    let alpha = rng.gen_range(0.15..0.85);
    let lambda = rng.gen_range(0.0..=1.0);
    let query = CaseQuery {
        x: rng.gen::<f64>(),
        y: rng.gen::<f64>(),
        keywords: random_doc(&mut rng, false),
        k,
        alpha,
    };

    // Pick 1–2 missing ids whose score ranks them below the top-k; the
    // harness re-derives ranks exactly, this is just a cheap local rank
    // estimate so most generated questions are valid.
    let missing = pick_missing(&objects, &query, &mut rng);

    let n_ops = rng.gen_range(0..=12);
    let mutations = mutation_script(&objects, n_ops, &mut rng);

    // Two thirds of mutated cases also crash mid-ingest.
    let fault = if !mutations.is_empty() && rng.gen_range(0..3u32) != 0 {
        Some(CaseFault {
            seed: rng.gen::<u64>() & SEED_MASK,
            // Even global op indexes are WAL page writes (odd are
            // syncs); torn writes only fire on writes.
            scripted: vec![(
                u64::from(rng.gen_range(0..40u32)) * 2,
                "torn_write".to_owned(),
            )],
        })
    } else {
        None
    };

    FuzzCase {
        seed,
        check: None,
        injected_bug: None,
        objects,
        query,
        missing,
        lambda,
        mutations,
        fault,
    }
}

/// A local score mirror of `Dataset::score` good enough for seeding the
/// missing set: α·(1−dist/maxdist) + (1−α)·Jaccard. Exactness is not
/// required — the harness validates the question against the real
/// engine and reports `Invalid` when this estimate was off.
fn estimate_rank_order(objects: &[CaseObject], query: &CaseQuery) -> Vec<usize> {
    let maxd = 2f64.sqrt();
    let mut scored: Vec<(usize, f64)> = objects
        .iter()
        .enumerate()
        .map(|(i, o)| {
            let dx = o.x - query.x;
            let dy = o.y - query.y;
            let s_spatial = 1.0 - (dx * dx + dy * dy).sqrt() / maxd;
            let inter = o
                .doc
                .iter()
                .filter(|t| query.keywords.contains(t))
                .collect::<std::collections::HashSet<_>>()
                .len();
            let union = o
                .doc
                .iter()
                .chain(query.keywords.iter())
                .collect::<std::collections::HashSet<_>>()
                .len();
            let s_text = if union == 0 {
                0.0
            } else {
                inter as f64 / union as f64
            };
            (i, query.alpha * s_spatial + (1.0 - query.alpha) * s_text)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.into_iter().map(|(i, _)| i).collect()
}

fn pick_missing(objects: &[CaseObject], query: &CaseQuery, rng: &mut StdRng) -> Vec<u32> {
    let order = estimate_rank_order(objects, query);
    let lo = query.k + 1;
    let hi = (query.k + 30).min(order.len());
    if lo >= hi {
        // Degenerate dataset; let the harness classify it Invalid.
        return vec![0];
    }
    let n_missing = if rng.gen_range(0..4u32) == 0 { 2 } else { 1 };
    let mut picked = Vec::new();
    for _ in 0..n_missing {
        let id = order[rng.gen_range(lo..hi)] as u32;
        if !picked.contains(&id) {
            picked.push(id);
        }
    }
    picked
}

fn mutation_script(objects: &[CaseObject], n_ops: usize, rng: &mut StdRng) -> Vec<CaseMutation> {
    let mut live: Vec<u32> = (0..objects.len() as u32).collect();
    let mut next_id = objects.len() as u32;
    (0..n_ops)
        .map(|_| {
            let roll = rng.gen_range(0..6u32);
            if live.is_empty() || roll < 3 {
                live.push(next_id);
                next_id += 1;
                CaseMutation::Insert {
                    x: rng.gen::<f64>(),
                    y: rng.gen::<f64>(),
                    doc: random_doc(rng, true),
                }
            } else if roll < 5 {
                let i = rng.gen_range(0..live.len());
                CaseMutation::Remove {
                    id: live.swap_remove(i),
                }
            } else {
                CaseMutation::Update {
                    id: live[rng.gen_range(0..live.len())],
                    doc: random_doc(rng, true),
                }
            }
        })
        .collect()
}

/// Validity check for a (possibly shrunk) mutation script: every
/// `Remove`/`Update` must name an id live at that point in the script.
/// The shrinker uses this to reject reductions that would dangle.
pub fn script_is_well_formed(n_objects: usize, mutations: &[CaseMutation]) -> bool {
    let mut live: Vec<bool> = vec![true; n_objects];
    for m in mutations {
        match m {
            CaseMutation::Insert { .. } => live.push(true),
            CaseMutation::Remove { id } => {
                let i = *id as usize;
                if i >= live.len() || !live[i] {
                    return false;
                }
                live[i] = false;
            }
            CaseMutation::Update { id, doc: _ } => {
                let i = *id as usize;
                if i >= live.len() || !live[i] {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for i in 0..16u64 {
            let s = case_seed(0xFEED, i);
            assert_eq!(generate_case(s), generate_case(s), "seed {s} not stable");
        }
    }

    #[test]
    fn case_seeds_fit_json_numbers() {
        for i in 0..256u64 {
            assert!(case_seed(u64::MAX, i) < (1 << 53));
        }
    }

    #[test]
    fn generated_scripts_are_well_formed() {
        for i in 0..64u64 {
            let case = generate_case(case_seed(7, i));
            assert!(
                script_is_well_formed(case.objects.len(), &case.mutations),
                "seed {} generated a dangling script",
                case.seed
            );
        }
    }

    #[test]
    fn generated_cases_round_trip() {
        for i in 0..32u64 {
            let case = generate_case(case_seed(99, i));
            let parsed = crate::case::FuzzCase::parse(&case.render()).unwrap();
            assert_eq!(case, parsed);
        }
    }
}
