//! The self-contained fuzz case: everything one differential check
//! needs — dataset, question, mutation script, fault plan — as plain
//! data, round-trippable through the workspace's dependency-free JSON.
//!
//! Bit-exactness matters: coordinates are `f64`s and the oracle
//! comparison is on `f64::to_bits`, so the serializer must not lose a
//! single ulp. [`wnsk_obs::JsonValue`] renders floats with the shortest
//! round-trip `Display` form, which re-parses to the identical bits —
//! the round-trip tests below pin that. Seeds are stored as JSON
//! numbers and therefore capped at 2^53 (see [`crate::gen::case_seed`]).

use wnsk_geo::Point;
use wnsk_obs::JsonValue;

/// Current case file format; bumped when the schema changes shape.
pub const FORMAT_VERSION: u64 = 1;

/// One object of the case dataset. Ids are positional: the object at
/// index `i` gets `ObjectId(i)` when the dataset is built, which is what
/// makes delta-debugging objects an id-remap rather than a guess.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseObject {
    pub x: f64,
    pub y: f64,
    /// Term ids; may be empty (the empty-doc edge case is corpus-worthy).
    pub doc: Vec<u32>,
}

/// The initial query `q = (loc, doc₀, k₀, α)`.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseQuery {
    pub x: f64,
    pub y: f64,
    pub keywords: Vec<u32>,
    pub k: usize,
    pub alpha: f64,
}

/// A mutation-script entry, mirroring [`wnsk_core::Mutation`] in plain
/// data. Insert ids are implicit: the `j`-th insert in the script gets
/// id `objects.len() + j`.
#[derive(Clone, Debug, PartialEq)]
pub enum CaseMutation {
    Insert { x: f64, y: f64, doc: Vec<u32> },
    Remove { id: u32 },
    Update { id: u32, doc: Vec<u32> },
}

/// A scripted storage-fault plan for the WAL ingest phase: `(global op
/// index, fault kind)` pairs. Only `torn_write` is generated today — it
/// is the power-loss crash the recovery cross-check is about.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseFault {
    pub seed: u64,
    pub scripted: Vec<(u64, String)>,
}

/// A complete differential-fuzzing case.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzCase {
    /// The per-case seed (drives batch sizing and derived probe queries).
    pub seed: u64,
    /// When minimized by the shrinker: the check id this case still
    /// fails. `None` for fresh or handcrafted cases.
    pub check: Option<String>,
    /// When the failure only reproduces with a deliberately injected
    /// solver bug (`wnsk fuzz --inject-bug …`), its name (e.g. `rank`).
    /// Corpus replay then asserts the case fails *with* the injection
    /// and passes *without* it.
    pub injected_bug: Option<String>,
    pub objects: Vec<CaseObject>,
    pub query: CaseQuery,
    /// Missing-object ids `M` (indexes into `objects`).
    pub missing: Vec<u32>,
    pub lambda: f64,
    pub mutations: Vec<CaseMutation>,
    pub fault: Option<CaseFault>,
}

impl FuzzCase {
    /// The point the dataset builder sees for object `i`.
    pub fn object_point(&self, i: usize) -> Point {
        Point::new(self.objects[i].x, self.objects[i].y)
    }

    /// Serializes to the versioned JSON object (`docs/ARCHITECTURE.md`,
    /// "Fuzzing" documents the schema).
    pub fn to_json(&self) -> JsonValue {
        let objects = JsonValue::Array(
            self.objects
                .iter()
                .map(|o| {
                    JsonValue::Array(vec![
                        JsonValue::Number(o.x),
                        JsonValue::Number(o.y),
                        id_array(&o.doc),
                    ])
                })
                .collect(),
        );
        let query = JsonValue::object(vec![
            (
                "at",
                JsonValue::Array(vec![
                    JsonValue::Number(self.query.x),
                    JsonValue::Number(self.query.y),
                ]),
            ),
            ("keywords", id_array(&self.query.keywords)),
            ("k", JsonValue::from(self.query.k)),
            ("alpha", JsonValue::Number(self.query.alpha)),
        ]);
        let mutations = JsonValue::Array(
            self.mutations
                .iter()
                .map(|m| match m {
                    CaseMutation::Insert { x, y, doc } => JsonValue::object(vec![
                        ("op", JsonValue::from("insert")),
                        (
                            "at",
                            JsonValue::Array(vec![JsonValue::Number(*x), JsonValue::Number(*y)]),
                        ),
                        ("doc", id_array(doc)),
                    ]),
                    CaseMutation::Remove { id } => JsonValue::object(vec![
                        ("op", JsonValue::from("remove")),
                        ("id", JsonValue::from(u64::from(*id))),
                    ]),
                    CaseMutation::Update { id, doc } => JsonValue::object(vec![
                        ("op", JsonValue::from("update")),
                        ("id", JsonValue::from(u64::from(*id))),
                        ("doc", id_array(doc)),
                    ]),
                })
                .collect(),
        );
        let mut fields = vec![
            ("format", JsonValue::from(FORMAT_VERSION)),
            ("seed", JsonValue::from(self.seed)),
        ];
        if let Some(check) = &self.check {
            fields.push(("check", JsonValue::from(check.as_str())));
        }
        if let Some(bug) = &self.injected_bug {
            fields.push(("injected_bug", JsonValue::from(bug.as_str())));
        }
        fields.push(("objects", objects));
        fields.push(("query", query));
        fields.push(("missing", id_array(&self.missing)));
        fields.push(("lambda", JsonValue::Number(self.lambda)));
        fields.push(("mutations", mutations));
        if let Some(fault) = &self.fault {
            fields.push((
                "fault",
                JsonValue::object(vec![
                    ("seed", JsonValue::from(fault.seed)),
                    (
                        "scripted",
                        JsonValue::Array(
                            fault
                                .scripted
                                .iter()
                                .map(|(op, kind)| {
                                    JsonValue::Array(vec![
                                        JsonValue::from(*op),
                                        JsonValue::from(kind.as_str()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        JsonValue::object(fields)
    }

    /// Renders the case as a pretty-enough single-line JSON document
    /// (a trailing newline keeps the corpus files diff-friendly).
    pub fn render(&self) -> String {
        let mut s = self.to_json().render();
        s.push('\n');
        s
    }

    /// Parses a case file, validating the format version and every
    /// field's type and range. Errors are human-oriented strings — the
    /// corpus replayer surfaces them verbatim.
    pub fn parse(input: &str) -> Result<FuzzCase, String> {
        let v = JsonValue::parse(input)?;
        let format = get_u64(&v, "format")?;
        if format != FORMAT_VERSION {
            return Err(format!(
                "unsupported case format {format} (this build reads {FORMAT_VERSION})"
            ));
        }
        let seed = get_u64(&v, "seed")?;
        let check = match v.get("check") {
            None => None,
            Some(c) => Some(
                c.as_str()
                    .ok_or_else(|| "'check' must be a string".to_owned())?
                    .to_owned(),
            ),
        };
        let injected_bug = match v.get("injected_bug") {
            None => None,
            Some(c) => Some(
                c.as_str()
                    .ok_or_else(|| "'injected_bug' must be a string".to_owned())?
                    .to_owned(),
            ),
        };
        let objects = v
            .get("objects")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "'objects' must be an array".to_owned())?
            .iter()
            .enumerate()
            .map(|(i, o)| {
                let triple = o
                    .as_array()
                    .filter(|a| a.len() == 3)
                    .ok_or_else(|| format!("objects[{i}] must be [x, y, [terms]]"))?;
                Ok(CaseObject {
                    x: as_finite(&triple[0], "object x")?,
                    y: as_finite(&triple[1], "object y")?,
                    doc: parse_ids(&triple[2], "object doc")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let q = v.get("query").ok_or_else(|| "missing 'query'".to_owned())?;
        let at = q
            .get("at")
            .and_then(JsonValue::as_array)
            .filter(|a| a.len() == 2)
            .ok_or_else(|| "'query.at' must be [x, y]".to_owned())?;
        let query = CaseQuery {
            x: as_finite(&at[0], "query.at x")?,
            y: as_finite(&at[1], "query.at y")?,
            keywords: parse_ids(
                q.get("keywords")
                    .ok_or_else(|| "missing 'query.keywords'".to_owned())?,
                "query.keywords",
            )?,
            k: get_u64(q, "k")? as usize,
            alpha: as_finite(
                q.get("alpha")
                    .ok_or_else(|| "missing 'query.alpha'".to_owned())?,
                "query.alpha",
            )?,
        };
        let missing = parse_ids(
            v.get("missing")
                .ok_or_else(|| "missing 'missing'".to_owned())?,
            "missing",
        )?;
        let lambda = as_finite(
            v.get("lambda")
                .ok_or_else(|| "missing 'lambda'".to_owned())?,
            "lambda",
        )?;
        let mutations = match v.get("mutations") {
            None => Vec::new(),
            Some(ms) => ms
                .as_array()
                .ok_or_else(|| "'mutations' must be an array".to_owned())?
                .iter()
                .enumerate()
                .map(|(i, m)| parse_mutation(m, i))
                .collect::<Result<Vec<_>, String>>()?,
        };
        let fault = match v.get("fault") {
            None => None,
            Some(f) => {
                let scripted = f
                    .get("scripted")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| "'fault.scripted' must be an array".to_owned())?
                    .iter()
                    .map(|e| {
                        let pair = e.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                            "fault.scripted entries must be [op, kind]".to_owned()
                        })?;
                        let op = pair[0]
                            .as_f64()
                            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                            .ok_or_else(|| {
                                "fault op index must be a non-negative integer".to_owned()
                            })? as u64;
                        let kind = pair[1]
                            .as_str()
                            .ok_or_else(|| "fault kind must be a string".to_owned())?
                            .to_owned();
                        Ok((op, kind))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Some(CaseFault {
                    seed: get_u64(f, "seed")?,
                    scripted,
                })
            }
        };
        Ok(FuzzCase {
            seed,
            check,
            injected_bug,
            objects,
            query,
            missing,
            lambda,
            mutations,
            fault,
        })
    }
}

fn id_array(ids: &[u32]) -> JsonValue {
    JsonValue::Array(ids.iter().map(|&i| JsonValue::from(u64::from(i))).collect())
}

fn parse_ids(v: &JsonValue, what: &str) -> Result<Vec<u32>, String> {
    v.as_array()
        .ok_or_else(|| format!("'{what}' must be an array"))?
        .iter()
        .map(|e| {
            e.as_f64()
                .filter(|n| *n >= 0.0 && *n <= f64::from(u32::MAX) && n.fract() == 0.0)
                .map(|n| n as u32)
                .ok_or_else(|| format!("'{what}' entries must be u32 ids"))
        })
        .collect()
}

fn get_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .filter(|n| *n >= 0.0 && n.fract() == 0.0)
        .map(|n| n as u64)
        .ok_or_else(|| format!("'{key}' must be a non-negative integer"))
}

fn as_finite(v: &JsonValue, what: &str) -> Result<f64, String> {
    v.as_f64()
        .filter(|n| n.is_finite())
        .ok_or_else(|| format!("'{what}' must be a finite number"))
}

fn parse_mutation(m: &JsonValue, i: usize) -> Result<CaseMutation, String> {
    let op = m
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("mutations[{i}] missing 'op'"))?;
    match op {
        "insert" => {
            let at = m
                .get("at")
                .and_then(JsonValue::as_array)
                .filter(|a| a.len() == 2)
                .ok_or_else(|| format!("mutations[{i}] insert needs 'at': [x, y]"))?;
            Ok(CaseMutation::Insert {
                x: as_finite(&at[0], "mutation x")?,
                y: as_finite(&at[1], "mutation y")?,
                doc: parse_ids(
                    m.get("doc")
                        .ok_or_else(|| format!("mutations[{i}] insert needs 'doc'"))?,
                    "mutation doc",
                )?,
            })
        }
        "remove" => Ok(CaseMutation::Remove {
            id: get_u64(m, "id")? as u32,
        }),
        "update" => Ok(CaseMutation::Update {
            id: get_u64(m, "id")? as u32,
            doc: parse_ids(
                m.get("doc")
                    .ok_or_else(|| format!("mutations[{i}] update needs 'doc'"))?,
                "mutation doc",
            )?,
        }),
        other => Err(format!("mutations[{i}]: unknown op {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FuzzCase {
        FuzzCase {
            seed: 42,
            check: Some("kcr[scalar,t=2,b=16]".to_owned()),
            injected_bug: Some("rank".to_owned()),
            objects: vec![
                CaseObject {
                    x: 0.123456789012345,
                    y: 0.9,
                    doc: vec![1, 5, 9],
                },
                CaseObject {
                    x: 0.5,
                    y: 0.5,
                    doc: vec![],
                },
            ],
            query: CaseQuery {
                x: 1.0 / 3.0,
                y: 2.0f64.sqrt() / 2.0,
                keywords: vec![1, 2],
                k: 5,
                alpha: 0.5,
            },
            missing: vec![1],
            lambda: 0.5,
            mutations: vec![
                CaseMutation::Insert {
                    x: 0.25,
                    y: 0.75,
                    doc: vec![3],
                },
                CaseMutation::Remove { id: 0 },
                CaseMutation::Update {
                    id: 2,
                    doc: vec![4, 7],
                },
            ],
            fault: Some(CaseFault {
                seed: 7,
                scripted: vec![(12, "torn_write".to_owned())],
            }),
        }
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let case = sample();
        let rendered = case.render();
        let parsed = FuzzCase::parse(&rendered).unwrap();
        assert_eq!(case, parsed);
        // Coordinates survive to the bit, not merely approximately.
        assert_eq!(
            case.query.y.to_bits(),
            parsed.query.y.to_bits(),
            "f64 round-trip lost bits"
        );
        // Render is a fixpoint: parse → render reproduces the bytes.
        assert_eq!(rendered, parsed.render());
    }

    #[test]
    fn optional_fields_are_omitted_and_restored() {
        let mut case = sample();
        case.check = None;
        case.injected_bug = None;
        case.fault = None;
        case.mutations.clear();
        let parsed = FuzzCase::parse(&case.render()).unwrap();
        assert_eq!(case, parsed);
        assert!(!case.render().contains("injected_bug"));
    }

    #[test]
    fn format_version_is_enforced() {
        let doc = sample().render().replace("\"format\":1", "\"format\":99");
        let err = FuzzCase::parse(&doc).unwrap_err();
        assert!(err.contains("unsupported case format"), "{err}");
    }

    #[test]
    fn malformed_cases_error_cleanly() {
        for bad in [
            "{}",
            "{\"format\":1}",
            "{\"format\":1,\"seed\":-3}",
            "not json",
        ] {
            assert!(FuzzCase::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
