//! `wnsk-fuzz` — the differential fuzzing harness behind `wnsk fuzz`
//! and `wnsk corpus`.
//!
//! The paper's exhaustive BS algorithm (§IV) is slow but *obviously*
//! correct, which makes it the perfect oracle for everything layered on
//! top of it: AdvancedBS's Opt1–4, the KcR bound-and-prune solver, the
//! bitset kernels, the parallel executor, and the WAL ingest/recovery
//! path. This crate closes the loop the ROADMAP gates the sharding
//! refactor on:
//!
//! 1. [`gen`] — a seed deterministically becomes a dataset + why-not
//!    question + mutation script + storage-fault plan ([`FuzzCase`]).
//! 2. [`harness`] — the case runs through the full
//!    solver × thread × kernel × opt matrix and, when mutations are
//!    present, through a crash/recover/twin-compare cycle; every answer
//!    is compared bit-for-bit against the BS / t=1 / scalar oracle.
//! 3. [`mod@shrink`] — a diverging case is delta-debugged down to a minimal
//!    reproducer that still fails the same check.
//! 4. [`corpus`] — the reproducer is written as a self-contained JSON
//!    file that the corpus-replay lane runs forever after.
//!
//! Work is metered under the `fuzz.*` metric names (`docs/METRICS.md`).

pub mod case;
pub mod corpus;
pub mod gen;
pub mod harness;
pub mod shrink;

pub use case::{CaseFault, CaseMutation, CaseObject, CaseQuery, FuzzCase};
pub use corpus::{replay_case, replay_dir, ReplayOutcome};
pub use gen::{case_seed, generate_case};
pub use harness::{run_case, CaseReport, Failure, HarnessOptions, InjectedBug, Verdict};
pub use shrink::{shrink, ShrinkOptions, ShrinkReport};

use std::path::PathBuf;
use wnsk_obs::{names, Registry};

/// One `wnsk fuzz` run's configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Run seed; case `i` uses [`case_seed`]`(seed, i)`.
    pub seed: u64,
    /// Number of cases to generate and run.
    pub cases: u64,
    /// Inject a known bug into the optimized paths (oracle self-test).
    pub inject: Option<InjectedBug>,
    /// Where to write shrunk failing cases (`None`: report only).
    pub emit_dir: Option<PathBuf>,
    /// Shrinker step bound per failure.
    pub shrink_limit: usize,
}

/// One case's outcome in a fuzz run, in deterministic order.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    pub index: u64,
    pub seed: u64,
    pub verdict: Verdict,
    /// Set when the case failed: the shrunk reproducer and where it was
    /// written (if an emit dir was configured).
    pub shrunk: Option<ShrinkReport>,
    pub emitted: Option<PathBuf>,
}

/// A whole run's summary.
#[derive(Debug)]
pub struct FuzzReport {
    pub outcomes: Vec<CaseOutcome>,
    pub cases: u64,
    pub invalid: u64,
    pub failures: u64,
    pub checks: u64,
    pub shrink_steps: u64,
}

/// Runs the fuzzer: generate → run → (on divergence) shrink → emit.
/// Deterministic end to end — same config, same outcomes, same emitted
/// bytes. Metrics land in `registry` under the `fuzz.*` names; I/O
/// errors writing the emit dir are the only fallible part.
pub fn run_fuzz(config: &FuzzConfig, registry: &Registry) -> std::io::Result<FuzzReport> {
    let opts = HarnessOptions {
        inject: config.inject,
    };
    let shrink_opts = ShrinkOptions {
        max_steps: config.shrink_limit,
    };
    let mut outcomes = Vec::with_capacity(config.cases as usize);
    let mut invalid = 0;
    let mut failures = 0;
    let mut checks = 0;
    let mut shrink_steps = 0;
    for index in 0..config.cases {
        let seed = case_seed(config.seed, index);
        let case = generate_case(seed);
        let report = run_case(&case, &opts);
        registry.counter(names::FUZZ_CASES).add(1);
        registry.counter(names::FUZZ_CHECKS).add(report.checks);
        checks += report.checks;
        let mut outcome = CaseOutcome {
            index,
            seed,
            verdict: report.verdict,
            shrunk: None,
            emitted: None,
        };
        match &outcome.verdict {
            Verdict::Invalid(_) => invalid += 1,
            Verdict::Fail(_) => {
                failures += 1;
                registry.counter(names::FUZZ_FAILURES).add(1);
                let shrunk = shrink(&case, &opts, &shrink_opts);
                registry
                    .counter(names::FUZZ_SHRINK_STEPS)
                    .add(shrunk.steps as u64);
                shrink_steps += shrunk.steps as u64;
                if let Some(dir) = &config.emit_dir {
                    outcome.emitted = Some(corpus::write_case(dir, &shrunk.case)?);
                }
                outcome.shrunk = Some(shrunk);
            }
            Verdict::Pass => {}
        }
        outcomes.push(outcome);
    }
    Ok(FuzzReport {
        outcomes,
        cases: config.cases,
        invalid,
        failures,
        checks,
        shrink_steps,
    })
}
