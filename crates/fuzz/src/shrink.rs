//! Delta-debug shrinking: given a failing case, greedily remove
//! objects, mutations, keywords, missing ids, and fault entries while
//! the case keeps failing the *same* check it originally failed.
//!
//! The reduction operators are domain-aware rather than byte-level:
//!
//! * Object removal remaps ids (ids are positional, so deleting the
//!   object at index `i` decrements every id reference `> i`; a
//!   reduction that would orphan a reference is skipped).
//! * Mutation removal is re-validated against the live-set simulation
//!   (`script_is_well_formed`), so scripts never dangle.
//! * Chunks are tried largest-first (classic ddmin halving) so the
//!   common case converges in O(log n) re-runs, then singles mop up.
//!
//! Every *attempted* reduction counts as one shrink step, bounded by
//! [`ShrinkOptions::max_steps`] — shrinking a fuzz failure must never
//! itself become the long pole of a CI run.

use crate::case::{CaseMutation, FuzzCase};
use crate::gen::script_is_well_formed;
use crate::harness::{run_case, HarnessOptions, Verdict};

/// Shrinker knobs.
#[derive(Clone, Copy, Debug)]
pub struct ShrinkOptions {
    /// Upper bound on attempted reductions (each one re-runs the case).
    pub max_steps: usize,
}

impl Default for ShrinkOptions {
    fn default() -> Self {
        ShrinkOptions { max_steps: 400 }
    }
}

/// The shrink outcome: the minimized case (annotated with the check it
/// still fails) and how many reductions were attempted.
#[derive(Clone, Debug)]
pub struct ShrinkReport {
    pub case: FuzzCase,
    pub steps: usize,
}

/// Minimizes `case`, which must currently fail under `opts`; the
/// returned case fails the same check. Panics if the input does not
/// fail (callers only shrink observed failures).
pub fn shrink(case: &FuzzCase, opts: &HarnessOptions, shrink_opts: &ShrinkOptions) -> ShrinkReport {
    let check = match run_case(case, opts).verdict {
        Verdict::Fail(f) => f.check,
        other => panic!("shrink called on a non-failing case ({other:?})"),
    };
    let mut best = case.clone();
    let mut steps = 0usize;
    // Round-robin the operators until a full sweep makes no progress.
    loop {
        let mut progressed = false;
        for op in [
            Operator::Objects,
            Operator::Mutations,
            Operator::Fault,
            Operator::Keywords,
            Operator::Missing,
        ] {
            progressed |= reduce(&mut best, op, &check, opts, shrink_opts, &mut steps);
        }
        if !progressed || steps >= shrink_opts.max_steps {
            break;
        }
    }
    best.check = Some(check);
    best.injected_bug = opts.inject.map(|b| b.name().to_owned());
    ShrinkReport { case: best, steps }
}

#[derive(Clone, Copy, Debug)]
enum Operator {
    Objects,
    Mutations,
    Keywords,
    Missing,
    Fault,
}

/// One ddmin pass of `op` over `best`: chunk sizes halve from len/2
/// down to 1; each viable candidate costs one step and is kept only if
/// it still fails `check`. Returns whether anything was removed.
fn reduce(
    best: &mut FuzzCase,
    op: Operator,
    check: &str,
    opts: &HarnessOptions,
    shrink_opts: &ShrinkOptions,
    steps: &mut usize,
) -> bool {
    let mut progressed = false;
    let mut chunk = (len_of(best, op) / 2).max(1);
    loop {
        let mut i = 0;
        while i < len_of(best, op) {
            if *steps >= shrink_opts.max_steps {
                return progressed;
            }
            let j = (i + chunk).min(len_of(best, op));
            if let Some(candidate) = remove_range(best, op, i, j) {
                *steps += 1;
                if run_case(&candidate, opts).verdict.failed_check() == Some(check) {
                    *best = candidate;
                    progressed = true;
                    // Do not advance: the next chunk shifted into place.
                    continue;
                }
            }
            i = j;
        }
        if chunk == 1 {
            return progressed;
        }
        chunk = (chunk / 2).max(1);
    }
}

fn len_of(case: &FuzzCase, op: Operator) -> usize {
    match op {
        Operator::Objects => case.objects.len(),
        Operator::Mutations => case.mutations.len(),
        Operator::Keywords => case.query.keywords.len(),
        Operator::Missing => case.missing.len(),
        Operator::Fault => case.fault.as_ref().map_or(0, |f| f.scripted.len()),
    }
}

/// Builds the candidate with elements `[i, j)` of `op` removed, or
/// `None` when the reduction is structurally impossible (it would
/// orphan an id, empty a required field, …). Validity is checked here
/// so impossible candidates never burn a shrink step.
fn remove_range(case: &FuzzCase, op: Operator, i: usize, j: usize) -> Option<FuzzCase> {
    let mut c = case.clone();
    match op {
        Operator::Objects => {
            let removed = (j - i) as u32;
            let lo = i as u32;
            let hi = j as u32;
            let remap = |id: u32| -> Option<u32> {
                if id < lo {
                    Some(id)
                } else if id < hi {
                    None
                } else {
                    Some(id - removed)
                }
            };
            c.objects.drain(i..j);
            if c.objects.is_empty() {
                return None;
            }
            // Ids past the dataset (implicit insert ids) shift by the
            // same amount, so the single remap covers both.
            c.missing = c
                .missing
                .iter()
                .map(|&id| remap(id))
                .collect::<Option<Vec<_>>>()?;
            for m in &mut c.mutations {
                match m {
                    CaseMutation::Insert { .. } => {}
                    CaseMutation::Remove { id } | CaseMutation::Update { id, .. } => {
                        *id = remap(*id)?;
                    }
                }
            }
            if !script_is_well_formed(c.objects.len(), &c.mutations) {
                return None;
            }
        }
        Operator::Mutations => {
            c.mutations.drain(i..j);
            if !script_is_well_formed(c.objects.len(), &c.mutations) {
                return None;
            }
            if c.mutations.is_empty() {
                c.fault = None;
            }
        }
        Operator::Keywords => {
            if c.query.keywords.len() - (j - i) == 0 {
                return None;
            }
            c.query.keywords.drain(i..j);
        }
        Operator::Missing => {
            if c.missing.len() - (j - i) == 0 {
                return None;
            }
            c.missing.drain(i..j);
        }
        Operator::Fault => {
            let fault = c.fault.as_mut()?;
            fault.scripted.drain(i..j);
            if fault.scripted.is_empty() {
                c.fault = None;
            }
        }
    }
    Some(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{CaseObject, CaseQuery};

    /// Object removal must remap every id reference or refuse.
    #[test]
    fn object_removal_remaps_ids() {
        let case = FuzzCase {
            seed: 1,
            check: None,
            injected_bug: None,
            objects: (0..6)
                .map(|i| CaseObject {
                    x: 0.1 * i as f64,
                    y: 0.5,
                    doc: vec![i],
                })
                .collect(),
            query: CaseQuery {
                x: 0.5,
                y: 0.5,
                keywords: vec![0, 1],
                k: 1,
                alpha: 0.5,
            },
            missing: vec![4],
            lambda: 0.5,
            mutations: vec![
                CaseMutation::Remove { id: 5 },
                CaseMutation::Update {
                    id: 3,
                    doc: vec![9],
                },
            ],
            fault: None,
        };
        // Removing objects [1, 3) shifts ids 3→1 slots down.
        let shrunk = remove_range(&case, Operator::Objects, 1, 3).unwrap();
        assert_eq!(shrunk.objects.len(), 4);
        assert_eq!(shrunk.missing, vec![2]);
        assert_eq!(
            shrunk.mutations,
            vec![
                CaseMutation::Remove { id: 3 },
                CaseMutation::Update {
                    id: 1,
                    doc: vec![9]
                },
            ]
        );
        // Removing the missing object itself is refused.
        assert!(remove_range(&case, Operator::Objects, 4, 5).is_none());
    }

    #[test]
    fn mutation_removal_never_dangles() {
        let case = FuzzCase {
            seed: 1,
            check: None,
            injected_bug: None,
            objects: vec![CaseObject {
                x: 0.5,
                y: 0.5,
                doc: vec![0],
            }],
            query: CaseQuery {
                x: 0.5,
                y: 0.5,
                keywords: vec![0],
                k: 1,
                alpha: 0.5,
            },
            missing: vec![0],
            lambda: 0.5,
            mutations: vec![
                CaseMutation::Insert {
                    x: 0.2,
                    y: 0.2,
                    doc: vec![1],
                },
                CaseMutation::Remove { id: 1 },
            ],
            fault: None,
        };
        // Dropping only the insert would leave `Remove { id: 1 }`
        // dangling — the reduction is refused.
        assert!(remove_range(&case, Operator::Mutations, 0, 1).is_none());
        // Dropping both is fine.
        assert!(remove_range(&case, Operator::Mutations, 0, 2).is_some());
    }
}
