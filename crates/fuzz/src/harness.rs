//! The differential runner: executes one [`FuzzCase`] through the full
//! solver × thread × kernel × opt matrix and cross-checks every answer
//! against the trusted oracle — plain BS semantics (every optimisation
//! off), one thread, the scalar text kernel.
//!
//! Verdicts are three-valued on purpose:
//!
//! * `Pass` — every check agreed with the oracle, bit-for-bit.
//! * `Invalid` — the case never reached a comparison (the question does
//!   not validate, λ out of range, …). Not a bug; generated cases land
//!   here occasionally and that path is itself worth covering.
//! * `Fail` — a check diverged. The `check` id is a *stable* string
//!   (e.g. `kcr[scalar,t=2,b=16]`): the shrinker minimizes against it
//!   and the corpus replayer asserts it reproduces.

use crate::case::{CaseMutation, FuzzCase};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use wnsk_core::{
    AdvancedOptions, KcrOptions, Mutation, PenaltyModel, RefinedQuery, WhyNotEngine, WhyNotQuestion,
};
use wnsk_geo::{Point, WorldBounds};
use wnsk_index::{Dataset, ObjectId, SpatialKeywordQuery, SpatialObject};
use wnsk_storage::{
    BufferPool, BufferPoolConfig, FaultBackend, FaultKind, FaultPlan, MemBackend, RetryPolicy,
};
use wnsk_text::{Kernel, KeywordSet};

/// Index fanout for harness-built engines (matches the recovery suite).
const FANOUT: usize = 8;
/// Thread counts the matrix sweeps.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
/// KcR batch sizes the matrix sweeps (16 forces several batches per
/// layer even on shrunk datasets).
const BATCH_SIZES: [usize; 2] = [16, 64];

/// A deliberately injected, test-only solver bug the harness can switch
/// on to prove the oracle actually catches divergence end-to-end.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedBug {
    /// `KcrOptions::inject_rank_bug`: over-count the initial rank
    /// `R(M, q₀)` by one, perturbing the Eqn. 4 Δk normaliser.
    Rank,
}

impl InjectedBug {
    /// The CLI / case-file name.
    pub fn name(self) -> &'static str {
        match self {
            InjectedBug::Rank => "rank",
        }
    }

    /// Parses a CLI / case-file bug name.
    pub fn parse(name: &str) -> Result<InjectedBug, String> {
        match name {
            "rank" => Ok(InjectedBug::Rank),
            other => Err(format!("unknown injected bug {other:?} (known: rank)")),
        }
    }
}

/// Harness knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct HarnessOptions {
    /// Inject a known bug into the optimized paths (never the oracle).
    pub inject: Option<InjectedBug>,
}

/// One diverged check.
#[derive(Clone, Debug, PartialEq)]
pub struct Failure {
    /// Stable check id, e.g. `advanced[bitset,t=4,opts=all]`.
    pub check: String,
    /// Human-oriented divergence description.
    pub detail: String,
}

/// The outcome of one case.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    Pass,
    Invalid(String),
    Fail(Failure),
}

impl Verdict {
    /// The failing check id, when there is one.
    pub fn failed_check(&self) -> Option<&str> {
        match self {
            Verdict::Fail(f) => Some(&f.check),
            _ => None,
        }
    }
}

/// A case outcome plus how many oracle cross-checks it evaluated (the
/// driver feeds this into the `fuzz.checks` counter).
#[derive(Clone, Debug)]
pub struct CaseReport {
    pub verdict: Verdict,
    pub checks: u64,
}

/// Tracks check count and first failure; checks after the first failure
/// are skipped (the shrinker needs the *first* failing check to stay
/// stable under reduction, and later checks usually fail for the same
/// root cause anyway).
struct Checker {
    checks: u64,
    failure: Option<Failure>,
}

impl Checker {
    fn new() -> Self {
        Checker {
            checks: 0,
            failure: None,
        }
    }

    fn failed(&self) -> bool {
        self.failure.is_some()
    }

    fn check(&mut self, id: &str, detail: Option<String>) {
        if self.failed() {
            return;
        }
        self.checks += 1;
        if let Some(detail) = detail {
            self.failure = Some(Failure {
                check: id.to_owned(),
                detail,
            });
        }
    }
}

/// Objective-value comparison: two solvers enumerating the same
/// candidate space in different orders may legitimately return
/// *different* equally-optimal refined queries (penalty ties are real —
/// swap one keyword for another with the same effect), but the optimum
/// penalty itself is the min over one shared multiset of `f64`s and
/// must agree to the bit.
fn diff_objective(oracle: &RefinedQuery, got: &RefinedQuery) -> Option<String> {
    (oracle.penalty.to_bits() != got.penalty.to_bits()).then(|| {
        format!(
            "optimum penalty diverged: oracle {} ({:#x}) vs {} ({:#x})",
            oracle.penalty,
            oracle.penalty.to_bits(),
            got.penalty,
            got.penalty.to_bits()
        )
    })
}

/// Bit-exact refined-query comparison; `None` means identical.
fn diff_refined(oracle: &RefinedQuery, got: &RefinedQuery) -> Option<String> {
    if oracle.doc != got.doc {
        return Some(format!(
            "refined keyword set diverged: oracle {:?} vs {:?}",
            oracle.doc.terms(),
            got.doc.terms()
        ));
    }
    if oracle.k != got.k {
        return Some(format!(
            "refined k diverged: oracle {} vs {}",
            oracle.k, got.k
        ));
    }
    if oracle.rank != got.rank {
        return Some(format!(
            "rank diverged: oracle {} vs {}",
            oracle.rank, got.rank
        ));
    }
    if oracle.edit_distance != got.edit_distance {
        return Some(format!(
            "edit distance diverged: oracle {} vs {}",
            oracle.edit_distance, got.edit_distance
        ));
    }
    if oracle.penalty.to_bits() != got.penalty.to_bits() {
        return Some(format!(
            "penalty bits diverged: oracle {} ({:#x}) vs {} ({:#x})",
            oracle.penalty,
            oracle.penalty.to_bits(),
            got.penalty,
            got.penalty.to_bits()
        ));
    }
    None
}

/// The oracle configuration: BS behaviour, sequential, scalar kernel.
fn oracle_options() -> AdvancedOptions {
    AdvancedOptions {
        kernel: Kernel::Scalar,
        ..AdvancedOptions::none()
    }
}

fn dataset_from(case: &FuzzCase) -> Dataset {
    let objects = case
        .objects
        .iter()
        .map(|o| SpatialObject {
            id: ObjectId(0),
            loc: Point::new(o.x, o.y),
            doc: KeywordSet::from_ids(o.doc.iter().copied()),
        })
        .collect();
    Dataset::new(objects, WorldBounds::unit())
}

fn mutations_from(case: &FuzzCase) -> Vec<Mutation> {
    case.mutations
        .iter()
        .map(|m| match m {
            CaseMutation::Insert { x, y, doc } => Mutation::Insert {
                loc: Point::new(*x, *y),
                doc: KeywordSet::from_ids(doc.iter().copied()),
            },
            CaseMutation::Remove { id } => Mutation::Remove { id: ObjectId(*id) },
            CaseMutation::Update { id, doc } => Mutation::UpdateDoc {
                id: ObjectId(*id),
                doc: KeywordSet::from_ids(doc.iter().copied()),
            },
        })
        .collect()
}

/// Structural pre-validation: everything that would panic or is
/// obviously not a runnable case is turned into `Invalid` instead.
fn validate_case(case: &FuzzCase) -> Result<(), String> {
    if case.objects.is_empty() {
        return Err("no objects".to_owned());
    }
    if case.query.k == 0 {
        return Err("query.k must be >= 1".to_owned());
    }
    if !(case.query.alpha > 0.0 && case.query.alpha < 1.0) {
        return Err(format!("query.alpha {} not in (0, 1)", case.query.alpha));
    }
    if case.query.keywords.is_empty() {
        return Err("query has no keywords".to_owned());
    }
    if !(0.0..=1.0).contains(&case.lambda) {
        return Err(format!("lambda {} not in [0, 1]", case.lambda));
    }
    if case.missing.is_empty() {
        return Err("missing set is empty".to_owned());
    }
    for &id in &case.missing {
        if id as usize >= case.objects.len() {
            return Err(format!("missing id {id} out of range"));
        }
    }
    let in_unit = |v: f64| (0.0..=1.0).contains(&v);
    if !in_unit(case.query.x) || !in_unit(case.query.y) {
        return Err("query location outside the unit world".to_owned());
    }
    for (i, o) in case.objects.iter().enumerate() {
        if !in_unit(o.x) || !in_unit(o.y) {
            return Err(format!("object {i} outside the unit world"));
        }
    }
    for m in &case.mutations {
        if let CaseMutation::Insert { x, y, .. } = m {
            if !in_unit(*x) || !in_unit(*y) {
                return Err("inserted object outside the unit world".to_owned());
            }
        }
    }
    if !crate::gen::script_is_well_formed(case.objects.len(), &case.mutations) {
        return Err("mutation script names a dead or unknown id".to_owned());
    }
    if let Some(fault) = &case.fault {
        for (_, kind) in &fault.scripted {
            fault_kind(kind)?;
        }
    }
    Ok(())
}

fn fault_kind(name: &str) -> Result<FaultKind, String> {
    match name {
        "torn_write" => Ok(FaultKind::TornWrite),
        other => Err(format!("unknown fault kind {other:?}")),
    }
}

fn build_engine(ds: &Dataset) -> Result<WhyNotEngine, String> {
    WhyNotEngine::build_with(ds.clone(), FANOUT, BufferPoolConfig::default())
        .map_err(|e| format!("engine build failed: {e}"))
}

fn question_from(case: &FuzzCase) -> WhyNotQuestion {
    WhyNotQuestion::new(
        SpatialKeywordQuery::new(
            Point::new(case.query.x, case.query.y),
            KeywordSet::from_ids(case.query.keywords.iter().copied()),
            case.query.k,
            case.query.alpha,
        ),
        case.missing.iter().map(|&id| ObjectId(id)).collect(),
        case.lambda,
    )
}

/// Runs one case through the whole matrix. Deterministic: same case +
/// same options → same verdict, bit for bit.
pub fn run_case(case: &FuzzCase, opts: &HarnessOptions) -> CaseReport {
    let mut checker = Checker::new();
    let verdict = match run_inner(case, opts, &mut checker) {
        Err(reason) => Verdict::Invalid(reason),
        Ok(()) => match checker.failure.take() {
            Some(f) => Verdict::Fail(f),
            None => Verdict::Pass,
        },
    };
    CaseReport {
        verdict,
        checks: checker.checks,
    }
}

fn run_inner(case: &FuzzCase, opts: &HarnessOptions, checker: &mut Checker) -> Result<(), String> {
    validate_case(case)?;
    let ds = dataset_from(case);
    let engine = build_engine(&ds)?;
    let question = question_from(case);
    question
        .validate(engine.dataset())
        .map_err(|e| format!("question invalid: {e}"))?;

    let oracle = engine
        .answer_advanced(&question, oracle_options())
        .map_err(|e| format!("oracle declined the case: {e}"))?;

    check_oracle_invariants(&question, &oracle.refined, checker);
    run_matrix(&engine, &question, &oracle.refined, "", opts, checker);

    // The §VI-B approximate solver explores a sampled candidate subset,
    // so it cannot beat the exhaustive optimum — but it must still
    // return a structurally sound, self-consistent answer.
    if !checker.failed() {
        match engine.answer_approx(&question, 2) {
            Err(e) => checker.check("approx", Some(format!("errored: {e}"))),
            Ok(a) => {
                checker.check(
                    "approx.lower_bound",
                    (a.refined.penalty < oracle.refined.penalty).then(|| {
                        format!(
                            "approximate penalty {} beats the exhaustive optimum {}",
                            a.refined.penalty, oracle.refined.penalty
                        )
                    }),
                );
                check_consistency(
                    engine.dataset(),
                    &question,
                    &a.refined,
                    "consistency.approx",
                    checker,
                );
            }
        }
    }

    if !case.mutations.is_empty() && !checker.failed() {
        run_recovery_phase(case, &ds, opts, checker)?;
    }
    Ok(())
}

/// Structural invariants of the Eqn. 4 optimum that hold regardless of
/// dataset: the baseline (keep `doc₀`, enlarge `k`) always costs exactly
/// λ and is always a candidate, refinement never ranks the missing set
/// below the refined `k`, and the reported edit distance must match the
/// keyword sets it claims to connect.
fn check_oracle_invariants(question: &WhyNotQuestion, r: &RefinedQuery, checker: &mut Checker) {
    checker.check(
        "invariant.penalty_range",
        (!r.penalty.is_finite()
            || !(0.0..=1.0).contains(&r.penalty)
            || r.penalty > question.lambda)
            .then(|| {
                format!(
                    "penalty {} outside [0, min(1, λ={})]",
                    r.penalty, question.lambda
                )
            }),
    );
    checker.check(
        "invariant.refined_k",
        (r.k < question.query.k || r.rank > r.k || r.rank == 0).then(|| {
            format!(
                "refined k'={} rank={} violate k'>=k0={} and 1<=rank<=k'",
                r.k, r.rank, question.query.k
            )
        }),
    );
    checker.check(
        "invariant.edit_distance",
        (question.query.doc.edit_distance(&r.doc) != r.edit_distance).then(|| {
            format!(
                "edit distance {} does not match doc₀→doc' ({:?} → {:?})",
                r.edit_distance,
                question.query.doc.terms(),
                r.doc.terms()
            )
        }),
    );
}

/// Self-consistency of one refined query against ground truth
/// recomputed straight from the dataset: the reported rank must be the
/// real `R(M, q')`, `k'` must follow Lemma 1, the edit distance must
/// connect the keyword sets it claims to, and the reported penalty must
/// be exactly what Eqn. 4 assigns those numbers. A solver returning a
/// *different* equally-optimal answer sails through; a solver
/// mis-reporting any component of its own answer (the injected rank bug
/// perturbs the Δk normaliser, for instance) does not.
fn check_consistency(
    ds: &Dataset,
    question: &WhyNotQuestion,
    r: &RefinedQuery,
    id: &str,
    checker: &mut Checker,
) {
    if checker.failed() {
        return;
    }
    let q0 = &question.query;
    let mut refined_q = q0.clone();
    refined_q.doc = r.doc.clone();
    refined_q.k = r.k;
    let rank = question
        .missing
        .iter()
        .map(|&m| ds.rank_of(m, &refined_q))
        .max()
        .unwrap_or(0);
    let initial_rank = question
        .missing
        .iter()
        .map(|&m| ds.rank_of(m, q0))
        .max()
        .unwrap_or(0);
    if initial_rank <= q0.k {
        checker.check(
            id,
            Some(format!(
                "question stopped being why-not: R(M,q)={initial_rank} <= k0={}",
                q0.k
            )),
        );
        return;
    }
    let mut universe = q0.doc.clone();
    for &m in &question.missing {
        universe = universe.union(&ds.object(m).doc);
    }
    let model = PenaltyModel::new(question.lambda, q0.k, initial_rank, universe.len());
    let detail = if r.rank != rank {
        Some(format!(
            "reported rank {} but the missing set really ranks {rank} under the refined query",
            r.rank
        ))
    } else if r.k != q0.k.max(rank) {
        Some(format!(
            "refined k'={} violates Lemma 1 (max(k0={}, rank={rank}))",
            r.k, q0.k
        ))
    } else if r.edit_distance != q0.doc.edit_distance(&r.doc) {
        Some(format!(
            "reported edit distance {} but doc₀→doc' is {}",
            r.edit_distance,
            q0.doc.edit_distance(&r.doc)
        ))
    } else if !penalty_matches(&model, r, rank) {
        Some(format!(
            "reported penalty {} but Eqn. 4 assigns {} (edit={}, rank={rank}, R={initial_rank})",
            r.penalty,
            model.penalty(r.edit_distance, rank),
            r.edit_distance
        ))
    } else {
        None
    };
    checker.check(id, detail);
}

/// Does the reported penalty match what Eqn. 4 assigns the answer's
/// (edit, rank)? The basic refined query ("keep `doc₀`, enlarge `k`")
/// is special-cased: solvers report its cost as the *exact* λ of
/// [`PenaltyModel::baseline_penalty`], whereas recomputing through
/// [`PenaltyModel::penalty`] evaluates `λ·x/x`, which may differ by an
/// ulp. Both spellings of the same quantity are accepted.
fn penalty_matches(model: &PenaltyModel, r: &RefinedQuery, rank: usize) -> bool {
    if r.penalty.to_bits() == model.penalty(r.edit_distance, rank).to_bits() {
        return true;
    }
    r.edit_distance == 0
        && rank == model.initial_rank
        && r.penalty.to_bits() == model.baseline_penalty().to_bits()
}

/// The solver × thread × kernel × opt sweep against one oracle answer.
/// `prefix` namespaces the check ids (`""` for phase A, `"recovery."`
/// for the post-WAL-replay phase).
///
/// Comparison strength is tiered by what the workspace actually
/// guarantees. Within one enumeration order, answers are bit-identical
/// across threads, kernels, and batch sizes (the determinism contract),
/// so every family member is held to its own t=1/scalar baseline with
/// [`diff_refined`]. *Across* enumeration orders only the optimum value
/// is guaranteed — penalty ties break differently — so family baselines
/// are held to the oracle with [`diff_objective`] plus
/// [`check_consistency`].
fn run_matrix(
    engine: &WhyNotEngine,
    question: &WhyNotQuestion,
    oracle: &RefinedQuery,
    prefix: &str,
    opts: &HarnessOptions,
    checker: &mut Checker,
) {
    let inject_rank_bug = opts.inject == Some(InjectedBug::Rank);
    let ds = engine.dataset();
    check_consistency(
        ds,
        question,
        oracle,
        &format!("{prefix}consistency.oracle"),
        checker,
    );

    // BS family (every optimisation off): the oracle is this family's
    // t=1/scalar member, so every other (kernel, threads) must
    // reproduce it bit for bit.
    for kernel in Kernel::ALL {
        for threads in THREAD_COUNTS {
            if checker.failed() {
                return;
            }
            if kernel == Kernel::Scalar && threads == 1 {
                continue;
            }
            let adv = AdvancedOptions {
                threads,
                kernel,
                ..AdvancedOptions::none()
            };
            let id = format!("{prefix}advanced[{},t={threads},opts=none]", kernel.name());
            match engine.answer_advanced(question, adv) {
                Err(e) => checker.check(&id, Some(format!("errored: {e}"))),
                Ok(a) => checker.check(&id, diff_refined(oracle, &a.refined)),
            }
        }
    }
    if checker.failed() {
        return;
    }

    // AdvancedBS with Opt1–3 on (ordered enumeration changes
    // tie-breaking, hence its own family baseline).
    let adv_baseline = AdvancedOptions {
        threads: 1,
        kernel: Kernel::Scalar,
        ..AdvancedOptions::default()
    };
    match engine.answer_advanced(question, adv_baseline) {
        Err(e) => checker.check(
            &format!("{prefix}advanced[scalar,t=1,opts=all]"),
            Some(format!("errored: {e}")),
        ),
        Ok(base) => {
            checker.check(
                &format!("{prefix}objective.advanced"),
                diff_objective(oracle, &base.refined),
            );
            check_consistency(
                ds,
                question,
                &base.refined,
                &format!("{prefix}consistency.advanced"),
                checker,
            );
            for kernel in Kernel::ALL {
                for threads in THREAD_COUNTS {
                    if checker.failed() {
                        return;
                    }
                    if kernel == Kernel::Scalar && threads == 1 {
                        continue;
                    }
                    let adv = AdvancedOptions {
                        threads,
                        kernel,
                        ..AdvancedOptions::default()
                    };
                    let id = format!("{prefix}advanced[{},t={threads},opts=all]", kernel.name());
                    match engine.answer_advanced(question, adv) {
                        Err(e) => checker.check(&id, Some(format!("errored: {e}"))),
                        Ok(a) => checker.check(&id, diff_refined(&base.refined, &a.refined)),
                    }
                }
            }
        }
    }
    if checker.failed() {
        return;
    }

    // KcRBased: bound-and-prune over the KcR-tree, again its own
    // tie-breaking family. The injected rank bug (when enabled) lives
    // here — the objective and consistency checks are what catch it.
    let kcr_baseline = KcrOptions {
        threads: 1,
        kernel: Kernel::Scalar,
        batch_size: BATCH_SIZES[0],
        inject_rank_bug,
        ..KcrOptions::default()
    };
    match engine.answer_kcr(question, kcr_baseline) {
        Err(e) => checker.check(
            &format!("{prefix}kcr[scalar,t=1,b={}]", BATCH_SIZES[0]),
            Some(format!("errored: {e}")),
        ),
        Ok(base) => {
            checker.check(
                &format!("{prefix}objective.kcr"),
                diff_objective(oracle, &base.refined),
            );
            check_consistency(
                ds,
                question,
                &base.refined,
                &format!("{prefix}consistency.kcr"),
                checker,
            );
            for kernel in Kernel::ALL {
                for threads in THREAD_COUNTS {
                    for batch_size in BATCH_SIZES {
                        if checker.failed() {
                            return;
                        }
                        if kernel == Kernel::Scalar && threads == 1 && batch_size == BATCH_SIZES[0]
                        {
                            continue;
                        }
                        let kcr = KcrOptions {
                            threads,
                            kernel,
                            batch_size,
                            inject_rank_bug,
                            ..KcrOptions::default()
                        };
                        let id =
                            format!("{prefix}kcr[{},t={threads},b={batch_size}]", kernel.name());
                        match engine.answer_kcr(question, kcr) {
                            Err(e) => checker.check(&id, Some(format!("errored: {e}"))),
                            Ok(a) => checker.check(&id, diff_refined(&base.refined, &a.refined)),
                        }
                    }
                }
            }
        }
    }
}

/// Phase B: ingest the mutation script into a WAL through the scripted
/// fault plan ("crash"), recover from the durable bytes alone, and
/// cross-check the recovered engine against a never-crashed twin — then
/// re-run a slice of the solver matrix on the recovered state.
fn run_recovery_phase(
    case: &FuzzCase,
    base: &Dataset,
    opts: &HarnessOptions,
    checker: &mut Checker,
) -> Result<(), String> {
    let muts = mutations_from(case);
    let (fault_seed, scripted) = match &case.fault {
        Some(f) => (f.seed, f.scripted.clone()),
        None => (case.seed, Vec::new()),
    };
    let mut plan = FaultPlan::new(fault_seed);
    for (op, kind) in &scripted {
        plan = plan.with_scripted(*op, fault_kind(kind)?);
    }
    let fb = Arc::new(FaultBackend::new(MemBackend::new(), plan));
    let wal_pool = Arc::new(BufferPool::new(
        Arc::clone(&fb) as Arc<dyn wnsk_storage::StorageBackend>,
        BufferPoolConfig {
            retry: RetryPolicy::none(),
            ..BufferPoolConfig::default()
        },
    ));

    // Live engine ingests in seeded batches until the scripted torn
    // write fires (or the script completes — a valid no-crash run).
    let mut live = build_engine(base)?;
    live.attach_wal(Arc::clone(&wal_pool))
        .map_err(|e| format!("wal attach failed: {e}"))?;
    let mut rng = StdRng::seed_from_u64(case.seed ^ 0xBA7C);
    let mut ingested = 0;
    while ingested < muts.len() {
        let n = rng.gen_range(1..=3usize).min(muts.len() - ingested);
        if live.ingest_batch(&muts[ingested..ingested + n]).is_err() {
            // Ambiguous durability on a faulted commit: stop ingesting,
            // recovery decides what survived.
            break;
        }
        ingested += n;
        if fb.fault_stats().torn_writes > 0 {
            break;
        }
    }
    drop(live);

    // Restart: drop every cached page, recover from durable bytes.
    wal_pool.clear_cache();
    let mut recovered = build_engine(base)?;
    let report = recovered
        .attach_wal(Arc::clone(&wal_pool))
        .map_err(|e| format!("recovery failed: {e}"))?;
    let replayed = report.records_replayed as usize;
    checker.check(
        "recovery.replay_count",
        (replayed > ingested).then(|| {
            format!("recovery replayed {replayed} records but only {ingested} were ingested")
        }),
    );
    if checker.failed() {
        return Ok(());
    }

    // The never-crashed twin applies the surviving prefix in memory.
    let mut twin = build_engine(base)?;
    for m in &muts[..replayed] {
        if let Err(e) = twin.apply(m) {
            checker.check("recovery.twin_apply", Some(format!("errored: {e}")));
            return Ok(());
        }
    }

    checker.check(
        "recovery.epoch",
        (recovered.epoch() != twin.epoch())
            .then(|| format!("epoch diverged: {} vs {}", recovered.epoch(), twin.epoch())),
    );
    checker.check(
        "recovery.live_len",
        (recovered.dataset().live_len() != twin.dataset().live_len()).then(|| {
            format!(
                "live object count diverged: {} vs {}",
                recovered.dataset().live_len(),
                twin.dataset().live_len()
            )
        }),
    );

    // Seeded probe queries: top-k lists agree bit for bit.
    let mut rng = StdRng::seed_from_u64(case.seed ^ 0x70FF);
    for probe in 0..2 {
        if checker.failed() {
            return Ok(());
        }
        let q = SpatialKeywordQuery::new(
            Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
            KeywordSet::from_ids(
                (0..rng.gen_range(1..=4)).map(|_| rng.gen_range(0..crate::gen::VOCAB)),
            ),
            5,
            0.5,
        );
        let id = format!("recovery.topk[{probe}]");
        match (recovered.top_k(&q), twin.top_k(&q)) {
            (Ok(a), Ok(b)) => {
                let same = a.len() == b.len()
                    && a.iter()
                        .zip(&b)
                        .all(|((ia, sa), (ib, sb))| ia == ib && sa.to_bits() == sb.to_bits());
                checker.check(
                    &id,
                    (!same).then(|| format!("top-k diverged: {a:?} vs {b:?}")),
                );
            }
            (ra, rb) => checker.check(
                &id,
                Some(format!(
                    "top-k errored asymmetrically: {:?} vs {:?}",
                    ra.err().map(|e| e.to_string()),
                    rb.err().map(|e| e.to_string())
                )),
            ),
        }
    }
    if checker.failed() {
        return Ok(());
    }

    // The original question, asked of the mutated world. It may have
    // become invalid (the missing object was removed, or now makes the
    // top-k) — then both engines must refuse identically.
    let question = question_from(case);
    match (
        recovered.answer_advanced(&question, oracle_options()),
        twin.answer_advanced(&question, oracle_options()),
    ) {
        (Err(a), Err(b)) => checker.check(
            "recovery.whynot_errors",
            (a.to_string() != b.to_string()).then(|| format!("error strings diverged: {a} vs {b}")),
        ),
        (Ok(a), Ok(b)) => {
            checker.check(
                "recovery.whynot_oracle",
                diff_refined(&a.refined, &b.refined),
            );
            // And the optimized solvers agree with the recovered
            // engine's own oracle — the injected bug is live here too.
            if !checker.failed() {
                run_matrix(
                    &recovered,
                    &question,
                    &a.refined,
                    "recovery.",
                    opts,
                    checker,
                );
            }
        }
        (ra, rb) => checker.check(
            "recovery.whynot_errors",
            Some(format!(
                "one engine errored, the other answered: {:?} vs {:?}",
                ra.map(|a| a.refined).map_err(|e| e.to_string()),
                rb.map(|b| b.refined).map_err(|e| e.to_string())
            )),
        ),
    }
    Ok(())
}
