//! The regression corpus: shrunk failing cases written as
//! self-contained JSON files that the `corpus replay` lane re-runs
//! forever after (`tests/corpus/` at the workspace root is the
//! committed set; a CI fuzz failure uploads its emitted directory as a
//! workflow artifact).
//!
//! Replay semantics per file:
//!
//! * `injected_bug` absent — a plain regression: the case must not
//!   `Fail` (either `Pass` or `Invalid` is fine; `Invalid` cases pin
//!   the validator).
//! * `injected_bug: "rank"` — a harness self-test: the case must
//!   `Fail` its recorded `check` when the named bug is injected, and
//!   must *not* fail without it. This proves the oracle still catches
//!   the class of bug the case was minimized against.

use crate::case::FuzzCase;
use crate::harness::{run_case, HarnessOptions, InjectedBug, Verdict};
use std::fs;
use std::path::{Path, PathBuf};

/// A stable, filesystem-safe file name for a shrunk case:
/// `case-<seed>-<check-slug>.json`.
pub fn file_name(case: &FuzzCase) -> String {
    let slug = match &case.check {
        None => "handwritten".to_owned(),
        Some(check) => check
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect::<String>()
            .split('-')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("-"),
    };
    format!("case-{}-{}.json", case.seed, slug)
}

/// Writes a case into `dir` (created if needed); returns the path.
pub fn write_case(dir: &Path, case: &FuzzCase) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(file_name(case));
    fs::write(&path, case.render())?;
    Ok(path)
}

/// Loads every `*.json` case in `dir`, sorted by file name so replay
/// order (and therefore output) is deterministic.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, FuzzCase)>, String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|path| {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let case = FuzzCase::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            Ok((path, case))
        })
        .collect()
}

/// One replayed corpus file's outcome.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    pub path: PathBuf,
    /// `None` means the file behaved as committed; `Some` describes the
    /// regression (or the self-test that stopped reproducing).
    pub regression: Option<String>,
}

/// Replays one case per the semantics above.
pub fn replay_case(path: &Path, case: &FuzzCase) -> ReplayOutcome {
    let regression = match &case.injected_bug {
        None => match run_case(case, &HarnessOptions::default()).verdict {
            Verdict::Fail(f) => Some(format!("regressed: check {} failed: {}", f.check, f.detail)),
            Verdict::Pass | Verdict::Invalid(_) => None,
        },
        Some(bug_name) => match InjectedBug::parse(bug_name) {
            Err(e) => Some(e),
            Ok(bug) => replay_self_test(case, bug),
        },
    };
    ReplayOutcome {
        path: path.to_path_buf(),
        regression,
    }
}

fn replay_self_test(case: &FuzzCase, bug: InjectedBug) -> Option<String> {
    let buggy = HarnessOptions { inject: Some(bug) };
    match run_case(case, &buggy).verdict {
        Verdict::Fail(f) => {
            if case.check.as_deref().is_some_and(|c| c != f.check) {
                return Some(format!(
                    "injected {} now trips {} instead of the recorded {}",
                    bug.name(),
                    f.check,
                    case.check.as_deref().unwrap_or("?")
                ));
            }
        }
        other => {
            return Some(format!(
                "injected {} no longer reproduces (got {other:?}) — the oracle lost coverage",
                bug.name()
            ))
        }
    }
    match run_case(case, &HarnessOptions::default()).verdict {
        Verdict::Fail(f) => Some(format!(
            "fails even without the injected bug: {} ({})",
            f.check, f.detail
        )),
        _ => None,
    }
}

/// Replays the whole directory; outcomes come back in file-name order.
pub fn replay_dir(dir: &Path) -> Result<Vec<ReplayOutcome>, String> {
    let cases = load_dir(dir)?;
    if cases.is_empty() {
        return Err(format!("corpus dir {} has no .json cases", dir.display()));
    }
    Ok(cases
        .iter()
        .map(|(path, case)| replay_case(path, case))
        .collect())
}
