//! The corpus-replay lane: every committed regression case under
//! `tests/corpus/` (workspace root) must keep behaving exactly as
//! committed — plain cases never fail a cross-check, injected-bug
//! self-tests keep failing their recorded check under injection and
//! keep passing without it.

use std::path::PathBuf;
use wnsk_fuzz::{corpus, replay_dir, run_case, HarnessOptions, InjectedBug, Verdict};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn every_committed_case_replays_clean() {
    let outcomes = replay_dir(&corpus_dir()).unwrap();
    assert!(
        outcomes.len() >= 6,
        "corpus shrank to {} cases — it only ever grows",
        outcomes.len()
    );
    let regressions: Vec<String> = outcomes
        .iter()
        .filter_map(|o| {
            o.regression
                .as_ref()
                .map(|r| format!("{}: {r}", o.path.display()))
        })
        .collect();
    assert!(
        regressions.is_empty(),
        "corpus regressed:\n{regressions:#?}"
    );
}

/// The committed self-tests prove, on every CI run, that the oracle
/// still catches the injected off-by-one — spelled out here explicitly
/// (rather than only via `replay_dir`) so a failure names the exact
/// verdicts.
#[test]
fn self_test_cases_catch_the_injected_bug() {
    let cases = corpus::load_dir(&corpus_dir()).unwrap();
    let mut self_tests = 0;
    for (path, case) in &cases {
        let Some(bug_name) = &case.injected_bug else {
            continue;
        };
        self_tests += 1;
        let bug = InjectedBug::parse(bug_name).unwrap();
        let buggy = run_case(case, &HarnessOptions { inject: Some(bug) }).verdict;
        assert_eq!(
            buggy.failed_check(),
            case.check.as_deref(),
            "{}: injected {bug_name} did not trip the recorded check (got {buggy:?})",
            path.display()
        );
        let clean = run_case(case, &HarnessOptions::default()).verdict;
        assert!(
            matches!(clean, Verdict::Pass),
            "{}: case should pass without the injected bug, got {clean:?}",
            path.display()
        );
    }
    assert!(
        self_tests >= 3,
        "only {self_tests} committed self-test cases — the oracle proof needs at least 3"
    );
}

/// One committed self-test exercises the WAL ingest/recovery phase
/// (mutations present), so corpus replay keeps fuzzing crash recovery.
#[test]
fn corpus_covers_the_recovery_phase() {
    let cases = corpus::load_dir(&corpus_dir()).unwrap();
    assert!(
        cases.iter().any(|(_, c)| !c.mutations.is_empty()),
        "no committed case carries a mutation script"
    );
}
