//! Properties of the shrinker and the fuzz driver.
//!
//! The load-bearing one: a shrunk case must still fail the *same*
//! cross-check it was minimized against — a shrinker that "fixes" the
//! case while shrinking it would quietly commit useless corpus files.

use wnsk_fuzz::{
    case_seed, generate_case, run_case, run_fuzz, shrink, FuzzCase, FuzzConfig, HarnessOptions,
    InjectedBug, ShrinkOptions, Verdict,
};
use wnsk_obs::Registry;

#[test]
fn shrunk_cases_still_fail_the_same_check() {
    let opts = HarnessOptions {
        inject: Some(InjectedBug::Rank),
    };
    let shrink_opts = ShrinkOptions { max_steps: 300 };
    let mut minimized = 0;
    for index in 0..8u64 {
        if minimized >= 2 {
            break;
        }
        let case = generate_case(case_seed(1, index));
        let Verdict::Fail(failure) = run_case(&case, &opts).verdict else {
            continue;
        };
        minimized += 1;
        let shrunk = shrink(&case, &opts, &shrink_opts);

        // The minimized case records the check and fails it, still.
        assert_eq!(shrunk.case.check.as_deref(), Some(failure.check.as_str()));
        assert_eq!(
            run_case(&shrunk.case, &opts).verdict.failed_check(),
            Some(failure.check.as_str()),
            "shrunk case no longer fails the check it was minimized against"
        );

        // Shrinking only ever removes.
        assert!(shrunk.case.objects.len() <= case.objects.len());
        assert!(shrunk.case.mutations.len() <= case.mutations.len());
        assert!(shrunk.case.query.keywords.len() <= case.query.keywords.len());
        assert!(shrunk.case.missing.len() <= case.missing.len());

        // The reproducer survives serialization: the emitted bytes
        // parse back into a case that fails identically.
        let reparsed = FuzzCase::parse(&shrunk.case.render()).unwrap();
        assert_eq!(
            run_case(&reparsed, &opts).verdict.failed_check(),
            Some(failure.check.as_str()),
            "round-tripped reproducer stopped failing"
        );

        // And without the injection it is clean — the failure really is
        // the injected bug, not collateral damage from shrinking.
        assert!(matches!(
            run_case(&shrunk.case, &HarnessOptions::default()).verdict,
            Verdict::Pass
        ));
    }
    assert!(
        minimized >= 2,
        "run seed 1 no longer produces 2 early injected-bug failures — repin the seed"
    );
}

/// Same seed, same config → same verdicts, case for case. This is the
/// contract the CI fuzz-smoke job and `--seed` reproduction rely on.
#[test]
fn fuzz_runs_are_deterministic() {
    let registry = Registry::new();
    let config = FuzzConfig {
        seed: 99,
        cases: 4,
        inject: None,
        emit_dir: None,
        shrink_limit: 100,
    };
    let a = run_fuzz(&config, &registry).unwrap();
    let b = run_fuzz(&config, &registry).unwrap();
    assert_eq!(a.cases, b.cases);
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.checks, b.checks);
    for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(oa.seed, ob.seed);
        assert_eq!(
            format!("{:?}", oa.verdict),
            format!("{:?}", ob.verdict),
            "verdict for case {} drifted between identical runs",
            oa.index
        );
    }
}

/// The driver's counters line up with its outcomes, and metrics land
/// under the `fuzz.*` names.
#[test]
fn run_fuzz_meters_its_work() {
    let registry = Registry::new();
    let before = registry.snapshot();
    let config = FuzzConfig {
        seed: 7,
        cases: 3,
        inject: None,
        emit_dir: None,
        shrink_limit: 50,
    };
    let report = run_fuzz(&config, &registry).unwrap();
    let delta = registry.snapshot().since(&before);
    assert_eq!(delta.counter(wnsk_obs::names::FUZZ_CASES), 3);
    assert_eq!(delta.counter(wnsk_obs::names::FUZZ_CHECKS), report.checks);
    assert_eq!(
        delta.counter(wnsk_obs::names::FUZZ_FAILURES),
        report.failures
    );
    assert_eq!(report.outcomes.len(), 3);
}
