//! Coordinator bit-identity: scatter-gather answers merged across
//! s ∈ {1, 2, 4} shards at t ∈ {1, 2, 4} scatter threads must equal the
//! single-shard engine's answers *exactly* — rank lists bit for bit,
//! refined queries field for field, penalties by their `f64` bit
//! patterns — including under a churn script and after crash-recovering
//! one shard from the coordinator route log.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use wnsk_core::{KcrOptions, Mutation, RefinedQuery, WhyNotEngine, WhyNotQuestion};
use wnsk_geo::{Point, WorldBounds};
use wnsk_index::{Dataset, ObjectId, SpatialKeywordQuery, SpatialObject};
use wnsk_shard::{Coordinator, CoordinatorConfig, ShardError, ShardManifest};
use wnsk_text::{Kernel, KeywordSet};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn random_dataset(n: usize, vocab: u32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let objects = (0..n)
        .map(|_| {
            let n_terms = rng.gen_range(1..=5);
            let doc = KeywordSet::from_ids((0..n_terms).map(|_| rng.gen_range(0..vocab)));
            SpatialObject {
                id: ObjectId(0),
                loc: Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
                doc,
            }
        })
        .collect();
    Dataset::new(objects, WorldBounds::unit())
}

fn random_query(vocab: u32, seed: u64) -> SpatialKeywordQuery {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    SpatialKeywordQuery::new(
        Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
        KeywordSet::from_ids((0..rng.gen_range(2..=4)).map(|_| rng.gen_range(0..vocab))),
        5,
        0.5,
    )
}

/// A question whose missing object genuinely sits below the top-k.
fn make_question(ds: &Dataset, vocab: u32, seed: u64) -> Option<WhyNotQuestion> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let q = random_query(vocab, seed);
    let mut scored: Vec<(ObjectId, f64)> =
        ds.live_objects().map(|o| (o.id, ds.score(o, &q))).collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    let lo = q.k + 2;
    let hi = (q.k + 40).min(scored.len());
    for _ in 0..100 {
        let id = scored[rng.gen_range(lo..hi)].0;
        if ds.rank_of(id, &q) > q.k {
            return Some(WhyNotQuestion::new(q, vec![id], 0.5));
        }
    }
    None
}

fn coordinator(ds: &Dataset, shards: usize, threads: usize) -> Coordinator {
    let manifest = ShardManifest::plan(ds, shards, 42);
    Coordinator::new(
        ds.clone(),
        manifest,
        CoordinatorConfig {
            threads,
            ..CoordinatorConfig::default()
        },
    )
    .unwrap()
}

fn assert_refined_identical(base: &RefinedQuery, other: &RefinedQuery, label: &str) {
    assert_eq!(base.doc, other.doc, "{label}: refined keyword set diverged");
    assert_eq!(base.k, other.k, "{label}: refined k diverged");
    assert_eq!(base.rank, other.rank, "{label}: rank diverged");
    assert_eq!(
        base.edit_distance, other.edit_distance,
        "{label}: edit distance diverged"
    );
    assert_eq!(
        base.penalty.to_bits(),
        other.penalty.to_bits(),
        "{label}: penalty bits diverged ({} vs {})",
        base.penalty,
        other.penalty
    );
}

fn assert_ranklist_identical(base: &[(ObjectId, f64)], other: &[(ObjectId, f64)], label: &str) {
    assert_eq!(
        base.len(),
        other.len(),
        "{label}: rank list length diverged"
    );
    for (i, (b, o)) in base.iter().zip(other).enumerate() {
        assert_eq!(b.0, o.0, "{label}: rank {i} object diverged");
        assert_eq!(
            b.1.to_bits(),
            o.1.to_bits(),
            "{label}: rank {i} score bits diverged"
        );
    }
}

#[test]
fn coordinator_topk_is_bit_identical_to_single_engine() {
    let vocab = 40;
    for seed in 0..4u64 {
        let ds = random_dataset(300, vocab, 7000 + seed);
        let engine = WhyNotEngine::build_in_memory(ds.clone()).unwrap();
        for shards in SHARD_COUNTS {
            for threads in THREAD_COUNTS {
                let coord = coordinator(&ds, shards, threads);
                for qseed in 0..5u64 {
                    let q = random_query(vocab, 8000 + seed * 100 + qseed);
                    let base = engine.top_k(&q).unwrap();
                    let merged = coord.top_k(&q).unwrap();
                    assert_ranklist_identical(
                        &base,
                        &merged,
                        &format!("topk s={shards} t={threads} seed={seed}/{qseed}"),
                    );
                }
            }
        }
    }
}

#[test]
fn coordinator_whynot_matches_every_kernel_and_solver() {
    let vocab = 40;
    let mut covered = 0;
    for seed in 0..5u64 {
        let ds = random_dataset(300, vocab, 1000 + seed);
        let Some(question) = make_question(&ds, vocab, 2000 + seed) else {
            continue;
        };
        covered += 1;
        let engine = WhyNotEngine::build_in_memory(ds.clone()).unwrap();
        let advanced = engine.answer(&question).unwrap();
        for kernel in Kernel::ALL {
            let kcr = engine
                .answer_kcr(
                    &question,
                    KcrOptions {
                        kernel,
                        ..KcrOptions::default()
                    },
                )
                .unwrap();
            assert_refined_identical(
                &advanced.refined,
                &kcr.refined,
                &format!("kcr kernel={kernel:?} seed={seed}"),
            );
        }
        for shards in SHARD_COUNTS {
            for threads in THREAD_COUNTS {
                let coord = coordinator(&ds, shards, threads);
                let merged = coord.whynot(&question).unwrap();
                let label = format!("whynot s={shards} t={threads} seed={seed}");
                assert_refined_identical(&advanced.refined, &merged.refined, &label);
                assert_eq!(
                    advanced.stats.initial_rank, merged.stats.initial_rank,
                    "{label}: initial rank R(M, q) diverged"
                );
            }
        }
    }
    assert!(covered >= 3, "only {covered} seeds produced a workload");
}

/// A seeded churn script: inserts, deletes and doc updates applied in
/// lock-step to a single engine and to the coordinator (which routes
/// them by partition key).
fn churn_script(ds: &Dataset, vocab: u32, steps: usize, seed: u64) -> Vec<Mutation> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A9);
    let mut live: Vec<u32> = ds.live_objects().map(|o| o.id.0).collect();
    let mut next_id = ds.len() as u32;
    let mut script = Vec::with_capacity(steps);
    for _ in 0..steps {
        let roll = rng.gen_range(0..10);
        if roll < 5 || live.len() < 10 {
            let n_terms = rng.gen_range(1..=5);
            script.push(Mutation::Insert {
                loc: Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
                doc: KeywordSet::from_ids((0..n_terms).map(|_| rng.gen_range(0..vocab))),
            });
            live.push(next_id);
            next_id += 1;
        } else if roll < 8 {
            let victim = live.swap_remove(rng.gen_range(0..live.len()));
            script.push(Mutation::Remove {
                id: ObjectId(victim),
            });
        } else {
            let target = live[rng.gen_range(0..live.len())];
            let n_terms = rng.gen_range(1..=5);
            script.push(Mutation::UpdateDoc {
                id: ObjectId(target),
                doc: KeywordSet::from_ids((0..n_terms).map(|_| rng.gen_range(0..vocab))),
            });
        }
    }
    script
}

#[test]
fn coordinator_stays_identical_under_churn() {
    let vocab = 40;
    let seed = 31u64;
    let ds = random_dataset(200, vocab, 9000 + seed);
    let script = churn_script(&ds, vocab, 60, seed);
    let mut engine = WhyNotEngine::build_in_memory(ds.clone()).unwrap();
    for shards in SHARD_COUNTS {
        let mut coord = coordinator(&ds, shards, 2);
        for m in &script {
            let gid = coord.ingest(m).unwrap();
            if shards == SHARD_COUNTS[0] {
                engine.ingest(m).unwrap();
            }
            if let Mutation::Insert { .. } = m {
                // Global ids assigned by the coordinator match the
                // single engine's slot assignment.
                assert!(coord.dataset().is_live(gid));
            }
        }
        assert_eq!(coord.epoch(), engine.epoch(), "epoch parity s={shards}");
        let churned = coord.dataset().clone();
        for qseed in 0..4u64 {
            let q = random_query(vocab, 9100 + qseed);
            assert_ranklist_identical(
                &engine.top_k(&q).unwrap(),
                &coord.top_k(&q).unwrap(),
                &format!("churn topk s={shards} qseed={qseed}"),
            );
        }
        if let Some(question) = make_question(&churned, vocab, 9200 + seed) {
            let base = engine.answer(&question).unwrap();
            let merged = coord.whynot(&question).unwrap();
            assert_refined_identical(
                &base.refined,
                &merged.refined,
                &format!("churn whynot s={shards}"),
            );
        }
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "wnsk-shard-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn route_log_recovers_a_shard_that_lost_its_wal() {
    let vocab = 40;
    let ds = random_dataset(150, vocab, 77);
    let script = churn_script(&ds, vocab, 40, 77);
    let manifest = ShardManifest::plan(&ds, 2, 42);
    let dir = temp_dir("crash");

    // Session 1: durable coordinator ingests the whole script.
    {
        let mut coord =
            Coordinator::new(ds.clone(), manifest.clone(), CoordinatorConfig::default()).unwrap();
        let recovery = coord.attach_wal_dir(&dir).unwrap();
        assert_eq!(recovery.route_records, 0);
        for m in &script {
            coord.ingest(m).unwrap();
        }
        assert_eq!(coord.epoch(), script.len() as u64);
    }

    // Crash: shard 1 loses its WAL entirely.
    std::fs::remove_file(dir.join("shard-1.wal")).unwrap();

    // Session 2: recovery re-drives shard 1 from the route log.
    let mut coord = Coordinator::new(
        ds.clone(),
        manifest.clone(),
        CoordinatorConfig {
            threads: 2,
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    let recovery = coord.attach_wal_dir(&dir).unwrap();
    assert_eq!(recovery.route_records, script.len() as u64);
    assert!(
        recovery.redone > 0,
        "losing a shard WAL must force route-log redo"
    );
    assert_eq!(coord.epoch(), script.len() as u64);

    // The recovered coordinator answers bit-identically to a single
    // engine fed the same stream.
    let mut engine = WhyNotEngine::build_in_memory(ds.clone()).unwrap();
    for m in &script {
        engine.ingest(m).unwrap();
    }
    for qseed in 0..4u64 {
        let q = random_query(vocab, 600 + qseed);
        assert_ranklist_identical(
            &engine.top_k(&q).unwrap(),
            &coord.top_k(&q).unwrap(),
            &format!("recovered topk qseed={qseed}"),
        );
    }
    if let Some(question) = make_question(coord.dataset(), vocab, 601) {
        let base = engine.answer(&question).unwrap();
        let merged = coord.whynot(&question).unwrap();
        assert_refined_identical(&base.refined, &merged.refined, "recovered whynot");
    }

    // And the statuses expose per-shard WAL positions again.
    let statuses = coord.shard_statuses();
    assert_eq!(statuses.len(), 2);
    for st in &statuses {
        assert!(
            st.wal_lsn > 0 || st.epoch == 0,
            "shard {} lost its WAL",
            st.shard
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admission_cap_zero_sheds_mutations_but_never_queries() {
    let vocab = 40;
    let ds = random_dataset(120, vocab, 5);
    let manifest = ShardManifest::plan(&ds, 2, 42);
    let mut coord = Coordinator::new(
        ds.clone(),
        manifest,
        CoordinatorConfig {
            admission_cap: Some(0),
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    let m = Mutation::Insert {
        loc: Point::new(0.5, 0.5),
        doc: KeywordSet::from_ids([1u32, 2]),
    };
    match coord.ingest(&m) {
        Err(ShardError::Shed { .. }) => {}
        other => panic!("expected shed, got {other:?}"),
    }
    assert_eq!(coord.epoch(), 0, "a shed mutation must not apply");
    let shed_total: u64 = coord.shard_statuses().iter().map(|s| s.shed).sum();
    assert_eq!(shed_total, 1);
    // Queries still flow.
    let q = random_query(vocab, 9);
    let engine = WhyNotEngine::build_in_memory(ds).unwrap();
    assert_ranklist_identical(
        &engine.top_k(&q).unwrap(),
        &coord.top_k(&q).unwrap(),
        "shed-mode topk",
    );
}

#[test]
fn replicas_serve_reads_and_stay_in_sync() {
    let vocab = 40;
    let ds = random_dataset(150, vocab, 11);
    let script = churn_script(&ds, vocab, 30, 11);
    let manifest = ShardManifest::plan(&ds, 2, 42);
    let mut coord = Coordinator::new(
        ds.clone(),
        manifest,
        CoordinatorConfig {
            replicas: 2,
            ..CoordinatorConfig::default()
        },
    )
    .unwrap();
    let mut engine = WhyNotEngine::build_in_memory(ds.clone()).unwrap();
    for m in &script {
        coord.ingest(m).unwrap();
        engine.ingest(m).unwrap();
    }
    // Enough queries that round-robin provably hits the replicas.
    for qseed in 0..6u64 {
        let q = random_query(vocab, 300 + qseed);
        assert_ranklist_identical(
            &engine.top_k(&q).unwrap(),
            &coord.top_k(&q).unwrap(),
            &format!("replica topk qseed={qseed}"),
        );
    }
    let hits = coord
        .registry()
        .counter(wnsk_obs::names::SHARD_REPLICA_HITS)
        .get();
    assert!(hits > 0, "round-robin reads never touched a replica");
}
