//! The deterministic keyword-aware partitioner and its durable output,
//! the [`ShardManifest`].
//!
//! # Plan shape
//!
//! Following the QDR-Tree observation that keyword-affine clustering
//! beats purely spatial grids for spatio-textual workloads, the
//! partitioner groups objects by their *anchor term* — the most
//! selective (lowest document-frequency) term of the document, ties
//! broken by the smaller term id — and packs whole term groups onto
//! shards with a longest-processing-time greedy (largest group first
//! onto the currently lightest shard). Keeping a term's documents
//! co-resident keeps each shard's adaption universe small, which is
//! what the penalty bounds of the source paper exploit. Objects with an
//! empty document fall back to a *spatial stripe* (equal-width vertical
//! stripes of the world rectangle), so the plan is total.
//!
//! The plan is a pure function of `(dataset, shards, seed)`: group
//! ordering uses document frequency with a seeded `splitmix64` hash as
//! the tie-break, no RNG state anywhere. Re-planning the same dataset
//! with the same seed reproduces the manifest bit for bit.
//!
//! # Manifest
//!
//! The [`ShardManifest`] records, per shard, the assigned global object
//! ids (compressed to half-open `[start, end)` runs) and the vocabulary
//! slice (the anchor terms packed onto that shard), plus the stripe →
//! shard table for the spatial fallback. It serializes to a single JSON
//! document written via tmp-file + atomic rename, so a concurrently
//! polling reader can never observe a torn manifest.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use wnsk_data::affinity::{anchor_term, doc_frequencies, spatial_stripe, splitmix64};
use wnsk_geo::{Point, WorldBounds};
use wnsk_index::Dataset;
use wnsk_obs::JsonValue;
use wnsk_text::KeywordSet;

/// Manifest format version.
pub const MANIFEST_VERSION: u64 = 1;

/// One shard's slice of the plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Global object ids assigned to this shard, as half-open
    /// `[start, end)` runs in ascending order.
    pub id_runs: Vec<(u32, u32)>,
    /// The vocabulary slice: anchor terms whose groups were packed onto
    /// this shard, ascending.
    pub terms: Vec<u32>,
}

impl ShardSpec {
    /// Number of objects covered by the id runs.
    pub fn object_count(&self) -> usize {
        self.id_runs.iter().map(|&(s, e)| (e - s) as usize).sum()
    }

    /// Whether `id` falls into one of the runs.
    pub fn contains(&self, id: u32) -> bool {
        self.id_runs.iter().any(|&(s, e)| id >= s && id < e)
    }

    /// Iterates the covered global ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.id_runs.iter().flat_map(|&(s, e)| s..e)
    }
}

/// The partition plan: which shard owns which objects and terms, and
/// where keyword-less inserts fall back to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardManifest {
    /// Format version ([`MANIFEST_VERSION`]).
    pub version: u64,
    /// The seed the plan was derived under (reproducibility record).
    pub seed: u64,
    /// Spatial-stripe fallback: stripe `j` (of `shards.len()` stripes)
    /// routes to shard `stripe_shards[j]`.
    pub stripe_shards: Vec<u32>,
    /// Per-shard slices, indexed by shard id.
    pub shards: Vec<ShardSpec>,
}

impl ShardManifest {
    /// Plans a partition of `dataset` into `shards` shards. Deterministic
    /// in `(dataset, shards, seed)`; every *slot* id of the dataset
    /// (live or tombstoned) is assigned to exactly one shard, so shard
    /// datasets reproduce the global slot layout.
    pub fn plan(dataset: &Dataset, shards: usize, seed: u64) -> ShardManifest {
        let shards = shards.max(1);
        let freq = doc_frequencies(dataset);
        // Group key: anchor term (keyword affinity) or, failing that,
        // the spatial stripe of the location.
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        enum GroupKey {
            Term(u32),
            Stripe(u32),
        }
        let mut groups: BTreeMap<GroupKey, Vec<u32>> = BTreeMap::new();
        for (slot, o) in dataset.objects().iter().enumerate() {
            let key = match anchor_term(&o.doc, &freq) {
                Some(t) => GroupKey::Term(t.0),
                None => GroupKey::Stripe(spatial_stripe(dataset.world(), &o.loc, shards) as u32),
            };
            groups.entry(key).or_default().push(slot as u32);
        }
        // LPT greedy: largest groups first (seeded hash breaks count
        // ties so equal-sized groups spread instead of clumping), each
        // onto the currently lightest shard.
        let mut ordered: Vec<(GroupKey, Vec<u32>)> = groups.into_iter().collect();
        ordered.sort_by_key(|(key, ids)| {
            let h = match key {
                GroupKey::Term(t) => splitmix64(seed, u64::from(*t)),
                GroupKey::Stripe(j) => splitmix64(seed ^ 0xA5A5_A5A5, u64::from(*j)),
            };
            (std::cmp::Reverse(ids.len()), h, *key)
        });
        let mut assigned_ids: Vec<Vec<u32>> = vec![Vec::new(); shards];
        let mut terms: Vec<Vec<u32>> = vec![Vec::new(); shards];
        let mut stripe_shards: Vec<Option<u32>> = vec![None; shards];
        for (key, ids) in ordered {
            let lightest = (0..shards)
                .min_by_key(|&s| (assigned_ids[s].len(), s))
                .expect("at least one shard");
            match key {
                GroupKey::Term(t) => terms[lightest].push(t),
                GroupKey::Stripe(j) => stripe_shards[j as usize] = Some(lightest as u32),
            }
            assigned_ids[lightest].extend(ids);
        }
        let specs = assigned_ids
            .into_iter()
            .zip(terms)
            .map(|(mut ids, mut terms)| {
                ids.sort_unstable();
                terms.sort_unstable();
                ShardSpec {
                    id_runs: compress_runs(&ids),
                    terms,
                }
            })
            .collect();
        // Stripes that held no objects still need a deterministic home
        // for future keyword-less inserts.
        let stripe_shards = stripe_shards
            .into_iter()
            .enumerate()
            .map(|(j, s)| s.unwrap_or((j % shards) as u32))
            .collect();
        ShardManifest {
            version: MANIFEST_VERSION,
            seed,
            stripe_shards,
            shards: specs,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning base object id `id`, if the manifest covers it.
    pub fn shard_of_id(&self, id: u32) -> Option<usize> {
        self.shards.iter().position(|s| s.contains(id))
    }

    /// The term → shard routing table (each shard's vocab slice,
    /// inverted).
    pub fn term_routes(&self) -> BTreeMap<u32, usize> {
        let mut map = BTreeMap::new();
        for (s, spec) in self.shards.iter().enumerate() {
            for &t in &spec.terms {
                map.insert(t, s);
            }
        }
        map
    }

    /// Routes a new insert: the smallest document term with a vocab
    /// assignment wins (deterministic regardless of insertion history);
    /// documents with no routed term fall back to the spatial stripe.
    pub fn route_insert(
        &self,
        doc: &KeywordSet,
        loc: &Point,
        world: &WorldBounds,
        term_routes: &BTreeMap<u32, usize>,
    ) -> usize {
        for t in doc.iter() {
            if let Some(&s) = term_routes.get(&t.0) {
                return s;
            }
        }
        let stripe = spatial_stripe(world, loc, self.stripe_shards.len().max(1));
        self.stripe_shards
            .get(stripe)
            .map(|&s| s as usize)
            .unwrap_or(0)
    }

    /// Serializes to a JSON document.
    pub fn to_json(&self) -> JsonValue {
        let shards = self
            .shards
            .iter()
            .map(|spec| {
                JsonValue::object(vec![
                    (
                        "id_runs",
                        JsonValue::Array(
                            spec.id_runs
                                .iter()
                                .map(|&(s, e)| {
                                    JsonValue::Array(vec![
                                        JsonValue::from(u64::from(s)),
                                        JsonValue::from(u64::from(e)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "terms",
                        JsonValue::Array(
                            spec.terms
                                .iter()
                                .map(|&t| JsonValue::from(u64::from(t)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        JsonValue::object(vec![
            ("version", JsonValue::from(self.version)),
            // The seed is a string: u64 seeds above 2^53 would lose
            // precision as a JSON number.
            ("seed", JsonValue::String(self.seed.to_string())),
            (
                "stripe_shards",
                JsonValue::Array(
                    self.stripe_shards
                        .iter()
                        .map(|&s| JsonValue::from(u64::from(s)))
                        .collect(),
                ),
            ),
            ("shards", JsonValue::Array(shards)),
        ])
    }

    /// Parses a manifest from its JSON text.
    pub fn parse(text: &str) -> Result<ShardManifest, String> {
        let doc = JsonValue::parse(text)?;
        let version = field_u64(&doc, "version")?;
        if version != MANIFEST_VERSION {
            return Err(format!(
                "unsupported manifest version {version} (expected {MANIFEST_VERSION})"
            ));
        }
        let seed = doc
            .get("seed")
            .and_then(JsonValue::as_str)
            .ok_or("manifest: missing seed")?
            .parse::<u64>()
            .map_err(|e| format!("manifest: bad seed: {e}"))?;
        let stripe_shards = doc
            .get("stripe_shards")
            .and_then(JsonValue::as_array)
            .ok_or("manifest: missing stripe_shards")?
            .iter()
            .map(|v| {
                v.as_f64()
                    .map(|n| n as u32)
                    .ok_or_else(|| "manifest: non-numeric stripe entry".to_string())
            })
            .collect::<Result<Vec<u32>, String>>()?;
        let mut shards = Vec::new();
        for spec in doc
            .get("shards")
            .and_then(JsonValue::as_array)
            .ok_or("manifest: missing shards")?
        {
            let id_runs = spec
                .get("id_runs")
                .and_then(JsonValue::as_array)
                .ok_or("manifest: shard missing id_runs")?
                .iter()
                .map(|run| {
                    let pair = run.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                        "manifest: id run must be a [start, end) pair".to_string()
                    })?;
                    let s = pair[0].as_f64().ok_or("manifest: non-numeric run start")? as u32;
                    let e = pair[1].as_f64().ok_or("manifest: non-numeric run end")? as u32;
                    if e < s {
                        return Err(format!("manifest: inverted id run [{s}, {e})"));
                    }
                    Ok((s, e))
                })
                .collect::<Result<Vec<(u32, u32)>, String>>()?;
            let terms = spec
                .get("terms")
                .and_then(JsonValue::as_array)
                .ok_or("manifest: shard missing terms")?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .map(|n| n as u32)
                        .ok_or_else(|| "manifest: non-numeric term".to_string())
                })
                .collect::<Result<Vec<u32>, String>>()?;
            shards.push(ShardSpec { id_runs, terms });
        }
        if shards.is_empty() {
            return Err("manifest: no shards".to_string());
        }
        Ok(ShardManifest {
            version,
            seed,
            stripe_shards,
            shards,
        })
    }

    /// Writes the manifest via tmp-file + atomic rename, so a reader
    /// polling `path` can never see a partial document.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_json().render().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads a manifest from disk.
    pub fn load(path: &Path) -> Result<ShardManifest, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        ShardManifest::parse(&text)
    }
}

fn field_u64(doc: &JsonValue, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(JsonValue::as_f64)
        .map(|n| n as u64)
        .ok_or_else(|| format!("manifest: missing numeric field '{key}'"))
}

/// Compresses an ascending id list into half-open `[start, end)` runs.
fn compress_runs(ids: &[u32]) -> Vec<(u32, u32)> {
    let mut runs: Vec<(u32, u32)> = Vec::new();
    for &id in ids {
        match runs.last_mut() {
            Some((_, end)) if *end == id => *end += 1,
            _ => runs.push((id, id + 1)),
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use wnsk_index::{ObjectId, SpatialObject};

    fn dataset(n: usize) -> Dataset {
        let objects = (0..n)
            .map(|i| SpatialObject {
                id: ObjectId(0),
                loc: Point::new(
                    (i as f64 * 7.0 % 29.0) / 29.0,
                    (i as f64 * 11.0 % 31.0) / 31.0,
                ),
                doc: if i % 9 == 8 {
                    KeywordSet::empty()
                } else {
                    KeywordSet::from_ids([i as u32 % 5, 5 + i as u32 % 3])
                },
            })
            .collect();
        Dataset::new(objects, WorldBounds::unit())
    }

    #[test]
    fn plan_is_total_and_disjoint() {
        let ds = dataset(60);
        for shards in [1usize, 2, 4] {
            let plan = ShardManifest::plan(&ds, shards, 42);
            assert_eq!(plan.shard_count(), shards);
            let mut seen = vec![0u32; ds.len()];
            for spec in &plan.shards {
                for id in spec.ids() {
                    seen[id as usize] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "every object in exactly one shard (s={shards})"
            );
        }
    }

    #[test]
    fn plan_is_deterministic_and_seed_sensitive() {
        let ds = dataset(60);
        let a = ShardManifest::plan(&ds, 4, 7);
        let b = ShardManifest::plan(&ds, 4, 7);
        assert_eq!(a, b);
        // A different seed is allowed to produce a different layout —
        // but must still be total (checked above); just pin that the
        // seed is recorded.
        assert_eq!(ShardManifest::plan(&ds, 4, 8).seed, 8);
    }

    #[test]
    fn manifest_json_round_trips() {
        let ds = dataset(60);
        let plan = ShardManifest::plan(&ds, 3, 99);
        let text = plan.to_json().render();
        let back = ShardManifest::parse(&text).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn atomic_write_and_load_round_trip() {
        let ds = dataset(30);
        let plan = ShardManifest::plan(&ds, 2, 5);
        let dir = std::env::temp_dir().join(format!("wnsk-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        plan.write_atomic(&path).unwrap();
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
        assert_eq!(ShardManifest::load(&path).unwrap(), plan);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn insert_routing_follows_terms_then_stripes() {
        let ds = dataset(60);
        let plan = ShardManifest::plan(&ds, 2, 42);
        let routes = plan.term_routes();
        // A doc holding term 0 routes wherever term 0's group lives.
        let with_term = KeywordSet::from_ids([0]);
        let expect = routes[&0];
        assert_eq!(
            plan.route_insert(&with_term, &Point::new(0.5, 0.5), ds.world(), &routes),
            expect
        );
        // Keyword-less inserts use the stripe table.
        let empty = KeywordSet::empty();
        let s = plan.route_insert(&empty, &Point::new(0.1, 0.5), ds.world(), &routes);
        assert!(s < plan.shard_count());
    }
}
