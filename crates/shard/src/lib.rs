//! Sharded scatter-gather serving for why-not spatial keyword top-k.
//!
//! Two pieces:
//!
//! * [`partition`] — a deterministic keyword-affinity partitioner: live
//!   objects cluster by their rarest term (spatial-stripe fallback for
//!   empty docs), clusters pack onto shards longest-first with seeded
//!   tie-shuffles, and the result is an explicit, reproducible
//!   [`ShardManifest`] (object-id runs + vocab slices + insert routes)
//!   that round-trips through JSON and is written atomically.
//! * [`coordinator`] — one [`wnsk_core::WhyNotEngine`] per shard (plus
//!   optional read replicas) behind a [`Coordinator`] that scatters
//!   top-k / why-not / dominator-count work across shards on a shared
//!   executor pool, tightens a cross-shard [`wnsk_exec::SharedBound`]
//!   as partial results stream back, and merges per-shard answers into
//!   results that are **bit-identical** to a single-shard engine — same
//!   penalty bits, same rank lists, same refined queries — for every
//!   shard count and thread count. Mutations route by partition key
//!   through per-shard WALs plus a coordinator route log, so shards
//!   crash-recover independently.

pub mod coordinator;
pub mod partition;

pub use coordinator::{
    Coordinator, CoordinatorConfig, Result, ShardError, ShardRecovery, ShardStatus,
};
pub use partition::{ShardManifest, ShardSpec};
