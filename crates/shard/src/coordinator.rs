//! The scatter-gather coordinator: one [`WhyNotEngine`] per shard
//! (plus optional read replicas), a full-corpus mirror dataset for
//! penalty bookkeeping, and merge logic proven bit-identical to the
//! single-shard engine.
//!
//! # Bit-identity argument
//!
//! Scoring is corpus-free — `ST(o, q)` depends only on the object, the
//! query, and the *world bounds* — so a shard-local SetR-tree built
//! over its slice with the shared world bounds produces exactly the
//! float bits the global tree would for the same object. Three facts
//! follow:
//!
//! * **top-k**: any member of the global top-k is within its own
//!   shard's local top-k (fewer than `k` objects precede it in the
//!   total order `(score desc, id asc)` globally, hence also within the
//!   shard), so merging per-shard top-k lists under the same total
//!   order and truncating to `k` reproduces the global list bit for
//!   bit.
//! * **ranks**: dominator counts are additive over a disjoint
//!   partition, so `R(M, q) = 1 + Σ_s |{o ∈ shard_s : ST(o,q) >
//!   min_m ST(m,q)}|` equals the single-engine rank scan.
//! * **why-not**: the coordinator replays the reference solver's
//!   sequential candidate order over the mirror (same enumeration, same
//!   penalty model, same strict-improvement rule), with each
//!   candidate's rank verified by a scatter of shard-local
//!   [`WhyNotEngine::count_dominators`] scans under the *full*
//!   tie-permissive rank limit. A shard aborting at limit `l` implies
//!   the global scan would abort; all shards exact with `Σ + 1 ≤ l`
//!   implies the global scan completes with the same rank — so
//!   prune/accept decisions match the one-shard solver exactly, for
//!   every scatter thread count.
//!
//! The cross-shard penalty bound is a [`SharedBound`] (the same
//! fetch-min the parallel solvers use): every improvement a candidate
//! streams back tightens the rank limit later candidates scatter with,
//! and the tightening count is exported as `shard.bound_tightenings`.
//!
//! # Durability
//!
//! [`Coordinator::attach_wal_dir`] gives each shard primary its own
//! WAL (`shard-<i>.wal`) plus a coordinator-level *route log*
//! (`route.wal`) recording `(shard, global id, mutation)` for every
//! accepted mutation — appended and committed *before* the shard
//! ingest, so the route log is always a superset of every shard WAL.
//! Recovery replays each shard WAL independently, then walks the route
//! log in order: records a shard already applied (its recovered epoch
//! covers them) only rebuild the mirror and id maps; records a crashed
//! shard lost are re-ingested through its WAL. Losing one shard's WAL
//! file therefore loses nothing: the route log re-drives that shard
//! back to the exact global state.

use crate::partition::ShardManifest;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;
use wnsk_core::{
    AlgoStats, AnswerQuality, CandidateEnumerator, DominatorCount, Mutation, RefinedQuery,
    WhyNotAnswer, WhyNotContext, WhyNotEngine, WhyNotError, WhyNotQuestion,
};
use wnsk_exec::{ExecMetrics, Executor, SharedBound};
use wnsk_index::{Dataset, ObjectId, SpatialKeywordQuery, SpatialObject};
use wnsk_obs::{names, Counter, Hist, JsonValue, Registry};
use wnsk_storage::{BufferPool, FileBackend, RecoveryReport, Wal};
use wnsk_text::Vocabulary;

/// Errors surfaced by the coordinator.
#[derive(Debug)]
pub enum ShardError {
    /// An underlying engine error (solver, index, storage).
    Engine(WhyNotError),
    /// A mutation was shed by the target shard's admission control.
    Shed {
        /// The shard that refused the mutation.
        shard: usize,
    },
    /// Configuration or manifest inconsistency.
    Config(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Engine(e) => write!(f, "{e}"),
            ShardError::Shed { shard } => write!(f, "shard {shard} admission: over capacity"),
            ShardError::Config(msg) => write!(f, "{msg}"),
        }
    }
}

impl From<WhyNotError> for ShardError {
    fn from(e: WhyNotError) -> Self {
        ShardError::Engine(e)
    }
}

impl From<wnsk_storage::StorageError> for ShardError {
    fn from(e: wnsk_storage::StorageError) -> Self {
        ShardError::Engine(e.into())
    }
}

/// Coordinator result type.
pub type Result<T> = std::result::Result<T, ShardError>;

/// Construction knobs for [`Coordinator::new`].
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    /// Copies of every shard, including the primary (1 = no replicas).
    /// Replicas are read-only fan-out targets behind the same
    /// epoch-stamped invalidation; writes go to every copy.
    pub replicas: usize,
    /// Threads used to scatter queries across shards (1 = sequential).
    /// Purely a wall-time knob: merged answers are bit-identical for
    /// every value.
    pub threads: usize,
    /// Per-shard in-flight mutation cap; a routed mutation arriving
    /// while the target shard already holds `cap` in flight is shed
    /// (`ShardError::Shed`). `None` disables shedding.
    pub admission_cap: Option<u64>,
    /// Index fanout for the per-shard trees.
    pub fanout: usize,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            replicas: 1,
            threads: 1,
            admission_cap: None,
            fanout: wnsk_core::DEFAULT_FANOUT,
        }
    }
}

/// One shard: a primary engine, optional read replicas, the local→
/// global id map, and admission state.
struct Shard {
    primary: WhyNotEngine,
    replicas: Vec<WhyNotEngine>,
    /// Local slot id → global slot id (dense, includes tombstones).
    global_of_local: Vec<ObjectId>,
    /// Read fan-out cursor (primary + replicas, round-robin).
    rr: AtomicUsize,
    /// Mutations currently in flight against this shard.
    inflight: AtomicU64,
    /// Mutations shed by this shard's admission control.
    shed: AtomicU64,
}

/// A point-in-time view of one shard, for `/healthz` and `wnsk top`.
#[derive(Clone, Debug)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// Total copies (primary + read replicas).
    pub replicas: usize,
    /// Live objects on the shard.
    pub objects: usize,
    /// The shard primary's dataset epoch (mutations applied).
    pub epoch: u64,
    /// Mutations currently in flight (the per-shard queue depth).
    pub inflight: u64,
    /// The admission cap, when shedding is enabled.
    pub admission_cap: Option<u64>,
    /// Mutations shed by admission control.
    pub shed: u64,
    /// Last LSN of the shard's WAL (0 when none is attached).
    pub wal_lsn: u64,
}

impl ShardStatus {
    /// Renders as a JSON object (one `/healthz` "shards" row).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("shard", JsonValue::from(self.shard)),
            ("replicas", JsonValue::from(self.replicas)),
            ("objects", JsonValue::from(self.objects)),
            ("epoch", JsonValue::from(self.epoch)),
            ("inflight", JsonValue::from(self.inflight)),
            (
                "admission_cap",
                match self.admission_cap {
                    Some(cap) => JsonValue::from(cap),
                    None => JsonValue::Null,
                },
            ),
            ("shed", JsonValue::from(self.shed)),
            ("wal_lsn", JsonValue::from(self.wal_lsn)),
        ])
    }
}

/// What [`Coordinator::attach_wal_dir`] recovered.
#[derive(Debug, Default)]
pub struct ShardRecovery {
    /// Per-shard WAL recovery reports, in shard order.
    pub shards: Vec<RecoveryReport>,
    /// Committed records found in the route log.
    pub route_records: u64,
    /// Route records re-ingested into shards whose own WAL had lost
    /// them (nonzero after a shard-level crash).
    pub redone: u64,
}

/// The scatter-gather coordinator over a keyword-aware partition.
pub struct Coordinator {
    manifest: ShardManifest,
    term_routes: BTreeMap<u32, usize>,
    shards: Vec<Shard>,
    /// Full-corpus mirror (no indexes): drives enumeration benefits,
    /// penalty normalisers and liveness checks with exactly the state a
    /// single engine would hold.
    mirror: Dataset,
    /// Global slot id → (shard, local slot id).
    locate: Vec<(u32, u32)>,
    threads: usize,
    admission_cap: Option<u64>,
    epoch: u64,
    route_wal: Option<Wal>,
    wal_dir: Option<PathBuf>,
    vocabulary: Option<Vocabulary>,
    registry: Registry,
    scatter_count: Counter,
    merge_ns: Hist,
    tightenings: Counter,
    replica_hits: Counter,
}

impl Coordinator {
    /// Builds one engine (plus replicas) per manifest shard over the
    /// partition of `dataset`. Every shard dataset shares the global
    /// world bounds, so shard-local scores are bit-identical to global
    /// ones; `dataset` itself is retained as the coordinator's mirror.
    pub fn new(
        dataset: Dataset,
        manifest: ShardManifest,
        config: CoordinatorConfig,
    ) -> Result<Self> {
        if manifest.shard_count() == 0 {
            return Err(ShardError::Config("manifest has no shards".into()));
        }
        let covered: usize = manifest.shards.iter().map(|s| s.object_count()).sum();
        if covered != dataset.len() {
            return Err(ShardError::Config(format!(
                "manifest covers {covered} objects, dataset has {}",
                dataset.len()
            )));
        }
        let world = *dataset.world();
        let mut locate = vec![(u32::MAX, u32::MAX); dataset.len()];
        let mut shards = Vec::with_capacity(manifest.shard_count());
        for (s, spec) in manifest.shards.iter().enumerate() {
            let mut global_of_local = Vec::with_capacity(spec.object_count());
            let mut objects: Vec<SpatialObject> = Vec::with_capacity(spec.object_count());
            for gid in spec.ids() {
                if (gid as usize) >= dataset.len() || locate[gid as usize].0 != u32::MAX {
                    return Err(ShardError::Config(format!(
                        "manifest assigns object {gid} out of range or twice"
                    )));
                }
                locate[gid as usize] = (s as u32, global_of_local.len() as u32);
                global_of_local.push(ObjectId(gid));
                objects.push(dataset.object(ObjectId(gid)).clone());
            }
            let local = Dataset::new(objects, world);
            let primary = WhyNotEngine::build_with(
                local.clone(),
                config.fanout,
                wnsk_storage::BufferPoolConfig::default(),
            )?;
            let replicas = (1..config.replicas.max(1))
                .map(|_| {
                    WhyNotEngine::build_with(
                        local.clone(),
                        config.fanout,
                        wnsk_storage::BufferPoolConfig::default(),
                    )
                })
                .collect::<std::result::Result<Vec<_>, _>>()?;
            shards.push(Shard {
                primary,
                replicas,
                global_of_local,
                rr: AtomicUsize::new(0),
                inflight: AtomicU64::new(0),
                shed: AtomicU64::new(0),
            });
        }
        let registry = Registry::new();
        let scatter_count = registry.counter(names::SHARD_SCATTER);
        let merge_ns = registry.hist(names::SHARD_MERGE_NS);
        let tightenings = registry.counter(names::SHARD_BOUND_TIGHTENINGS);
        let replica_hits = registry.counter(names::SHARD_REPLICA_HITS);
        Ok(Coordinator {
            term_routes: manifest.term_routes(),
            manifest,
            shards,
            mirror: dataset,
            locate,
            threads: config.threads.max(1),
            admission_cap: config.admission_cap,
            epoch: 0,
            route_wal: None,
            wal_dir: None,
            vocabulary: None,
            registry,
            scatter_count,
            merge_ns,
            tightenings,
            replica_hits,
        })
    }

    /// Attaches a vocabulary for keyword rendering/resolution.
    pub fn with_vocabulary(mut self, vocabulary: Vocabulary) -> Self {
        self.vocabulary = Some(vocabulary);
        self
    }

    /// The attached vocabulary, if any.
    pub fn vocabulary(&self) -> Option<&Vocabulary> {
        self.vocabulary.as_ref()
    }

    /// The partition plan this coordinator serves.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The coordinator's view of the full corpus (the mirror dataset).
    pub fn dataset(&self) -> &Dataset {
        &self.mirror
    }

    /// The coordinator metrics registry (`shard.*`; the serving layer
    /// adds its `serve.*` handles here too).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Shard `s`'s primary engine (per-shard admin planes scrape its
    /// registry; tests inspect it).
    pub fn shard_engine(&self, s: usize) -> &WhyNotEngine {
        &self.shards[s].primary
    }

    /// A clone (shared handles) of shard `s`'s primary registry.
    pub fn shard_registry(&self, s: usize) -> Registry {
        self.shards[s].primary.registry().clone()
    }

    /// Global dataset epoch: mutations applied through the coordinator
    /// (equals the sum of shard epochs and the epoch a single engine
    /// fed the same stream would report).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the durable plane (route log + shard WALs) is attached.
    pub fn wal_attached(&self) -> bool {
        self.route_wal.is_some()
    }

    /// The WAL directory, when attached.
    pub fn wal_dir(&self) -> Option<&Path> {
        self.wal_dir.as_deref()
    }

    /// Point-in-time per-shard status rows.
    pub fn shard_statuses(&self) -> Vec<ShardStatus> {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, shard)| ShardStatus {
                shard: s,
                replicas: 1 + shard.replicas.len(),
                objects: shard.primary.dataset().live_len(),
                epoch: shard.primary.epoch(),
                inflight: shard.inflight.load(Ordering::Relaxed),
                admission_cap: self.admission_cap,
                shed: shard.shed.load(Ordering::Relaxed),
                wal_lsn: shard.primary.wal().map(Wal::last_lsn).unwrap_or(0),
            })
            .collect()
    }

    /// The `/healthz` "shards" array.
    pub fn statuses_json(&self) -> JsonValue {
        JsonValue::Array(
            self.shard_statuses()
                .iter()
                .map(ShardStatus::to_json)
                .collect(),
        )
    }

    // ------------------------------------------------------------------
    // Durability
    // ------------------------------------------------------------------

    /// Attaches the durable plane under `dir`: one `shard-<i>.wal` per
    /// shard primary plus the coordinator `route.wal`, replaying all of
    /// them (see the module docs for the recovery protocol). Call on a
    /// freshly built coordinator, before any ingest.
    pub fn attach_wal_dir(&mut self, dir: &Path) -> Result<ShardRecovery> {
        if self.route_wal.is_some() {
            return Err(ShardError::Config(
                "a WAL directory is already attached".into(),
            ));
        }
        if self.epoch != 0 {
            return Err(ShardError::Config(
                "attach_wal_dir must run before any ingest".into(),
            ));
        }
        std::fs::create_dir_all(dir)
            .map_err(|e| ShardError::Config(format!("{}: {e}", dir.display())))?;
        let mut recovery = ShardRecovery::default();
        // Phase 1: every shard recovers its own WAL independently.
        let mut shard_epochs = Vec::with_capacity(self.shards.len());
        for (s, shard) in self.shards.iter_mut().enumerate() {
            let path = dir.join(format!("shard-{s}.wal"));
            let pool = open_pool(&path)?;
            let report = shard.primary.attach_wal(pool)?;
            shard_epochs.push(shard.primary.epoch());
            recovery.shards.push(report);
        }
        // Phase 2: read the route log.
        let route_path = dir.join("route.wal");
        let route_pool = open_pool(&route_path)?;
        let mut records: Vec<(usize, u32, Mutation)> = Vec::new();
        let (wal, _report) = Wal::recover(route_pool, |_lsn, kind, payload| {
            let (shard, gid, m) = decode_route(kind, payload)?;
            records.push((shard, gid, m));
            Ok(())
        })?;
        recovery.route_records = records.len() as u64;
        // Phase 3: replay the route log in order. `applied[s]` counts
        // route records targeting shard s; the first `shard_epochs[s]`
        // of them were already re-applied by the shard's own WAL.
        let mut applied = vec![0u64; self.shards.len()];
        for (s, gid, m) in records {
            if s >= self.shards.len() {
                return Err(ShardError::Config(format!(
                    "route log references shard {s} of {}",
                    self.shards.len()
                )));
            }
            let local_m = self.localize(s, gid, &m)?;
            applied[s] += 1;
            let redo = applied[s] > shard_epochs[s];
            if redo {
                recovery.redone += 1;
                self.shards[s].primary.ingest(&local_m)?;
            }
            for replica in &mut self.shards[s].replicas {
                replica.apply(&local_m)?;
            }
            self.apply_to_mirror(s, gid, &m)?;
        }
        for (s, shard_epoch) in shard_epochs.iter().enumerate() {
            if *shard_epoch > applied[s] {
                return Err(ShardError::Config(format!(
                    "shard {s} WAL holds {shard_epoch} mutations but the route log only {} — \
                     route log must be committed first",
                    applied[s]
                )));
            }
        }
        self.route_wal = Some(wal);
        self.wal_dir = Some(dir.to_path_buf());
        Ok(recovery)
    }

    /// Rewrites a global-form mutation into shard `s`'s local id space.
    fn localize(&self, s: usize, gid: u32, m: &Mutation) -> Result<Mutation> {
        Ok(match m {
            Mutation::Insert { loc, doc } => Mutation::Insert {
                loc: *loc,
                doc: doc.clone(),
            },
            Mutation::Remove { .. } => Mutation::Remove {
                id: self.local_id(s, gid)?,
            },
            Mutation::UpdateDoc { doc, .. } => Mutation::UpdateDoc {
                id: self.local_id(s, gid)?,
                doc: doc.clone(),
            },
        })
    }

    fn local_id(&self, s: usize, gid: u32) -> Result<ObjectId> {
        let &(shard, local) = self
            .locate
            .get(gid as usize)
            .ok_or_else(|| ShardError::Config(format!("unknown global id {gid}")))?;
        if shard as usize != s {
            return Err(ShardError::Config(format!(
                "global id {gid} lives on shard {shard}, not {s}"
            )));
        }
        Ok(ObjectId(local))
    }

    /// Applies a global-form mutation to the mirror and maintains the
    /// id maps. The local slot for an insert is the shard's current
    /// slot count: `global_of_local` is dense over every slot the shard
    /// ever assigned (tombstones included), so its length *is* the next
    /// local id — during live ingest and route-log replay alike (the
    /// shard's own WAL replay may run ahead of the route walk, but it
    /// never touches `global_of_local`).
    fn apply_to_mirror(&mut self, s: usize, gid: u32, m: &Mutation) -> Result<()> {
        match m {
            Mutation::Insert { loc, doc } => {
                let assigned = self.mirror.insert(*loc, doc.clone())?;
                if assigned.0 != gid {
                    return Err(ShardError::Config(format!(
                        "route log expects global id {gid}, mirror assigned {}",
                        assigned.0
                    )));
                }
                let local = self.shards[s].global_of_local.len() as u32;
                self.shards[s].global_of_local.push(ObjectId(gid));
                self.locate.push((s as u32, local));
            }
            Mutation::Remove { .. } => {
                self.mirror.remove(ObjectId(gid))?;
            }
            Mutation::UpdateDoc { doc, .. } => {
                self.mirror.update_doc(ObjectId(gid), doc.clone())?;
            }
        }
        self.epoch += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Mutations
    // ------------------------------------------------------------------

    /// Routes one mutation to its shard and applies it everywhere:
    /// route log first (when attached), then the shard primary (and its
    /// WAL), then every replica, then the mirror. Returns the *global*
    /// id of the affected object.
    pub fn ingest(&mut self, m: &Mutation) -> Result<ObjectId> {
        // Resolve the target shard and global id up front, so nothing
        // is partially applied on a routing error.
        let (s, gid) = match m {
            Mutation::Insert { loc, doc } => {
                if !self.mirror.world().rect().contains_point(loc) {
                    return Err(ShardError::Engine(
                        wnsk_storage::StorageError::invalid_argument(
                            "ingest",
                            format!("location {loc:?} lies outside the world bounds"),
                        )
                        .into(),
                    ));
                }
                let s =
                    self.manifest
                        .route_insert(doc, loc, self.mirror.world(), &self.term_routes);
                (s, self.mirror.len() as u32)
            }
            Mutation::Remove { id } | Mutation::UpdateDoc { id, .. } => {
                if !self.mirror.is_live(*id) {
                    return Err(ShardError::Engine(
                        wnsk_storage::StorageError::invalid_argument(
                            "ingest",
                            format!("{id:?} is not live"),
                        )
                        .into(),
                    ));
                }
                (self.locate[id.0 as usize].0 as usize, id.0)
            }
        };
        // Per-shard admission: an instantaneous in-flight gauge against
        // the cap. Queries are never shed (that would break
        // bit-identity); only routed mutations are.
        let inflight = self.shards[s].inflight.fetch_add(1, Ordering::Relaxed);
        if let Some(cap) = self.admission_cap {
            if inflight >= cap {
                self.shards[s].inflight.fetch_sub(1, Ordering::Relaxed);
                self.shards[s].shed.fetch_add(1, Ordering::Relaxed);
                return Err(ShardError::Shed { shard: s });
            }
        }
        let result = self.ingest_routed(s, gid, m);
        self.shards[s].inflight.fetch_sub(1, Ordering::Relaxed);
        result
    }

    fn ingest_routed(&mut self, s: usize, gid: u32, m: &Mutation) -> Result<ObjectId> {
        // Route log strictly before the shard ingest: recovery relies on
        // the route log covering every shard WAL record.
        if let Some(wal) = self.route_wal.as_mut() {
            wal.append(m.kind(), &encode_route(s, gid, m))?;
            wal.commit()?;
        }
        let local_m = self.localize(s, gid, m)?;
        let local_id = self.shards[s].primary.ingest(&local_m)?;
        for replica in &mut self.shards[s].replicas {
            replica.apply(&local_m)?;
        }
        self.apply_to_mirror(s, gid, m)?;
        if matches!(m, Mutation::Insert { .. }) {
            debug_assert_eq!(
                self.locate[gid as usize],
                (s as u32, local_id.0),
                "local slot reconstruction must match the shard's dense assignment"
            );
        }
        Ok(ObjectId(gid))
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Picks the read engine for shard `s`: primary when unreplicated,
    /// round-robin over primary + replicas otherwise (replica reads
    /// count into `shard.replica_hits`).
    fn read_engine(&self, s: usize) -> &WhyNotEngine {
        let shard = &self.shards[s];
        let copies = 1 + shard.replicas.len();
        if copies == 1 {
            return &shard.primary;
        }
        let i = shard.rr.fetch_add(1, Ordering::Relaxed) % copies;
        if i == 0 {
            &shard.primary
        } else {
            self.replica_hits.inc();
            &shard.replicas[i - 1]
        }
    }

    /// Scatters `f` to every shard on the coordinator's thread pool and
    /// gathers the results in shard order (a sequence barrier: results
    /// are merged only after every shard answered, so the merge is
    /// deterministic for every thread count).
    fn scatter<R, F>(&self, f: F) -> Result<Vec<R>>
    where
        R: Send,
        F: Fn(usize, &WhyNotEngine) -> std::result::Result<R, WhyNotError> + Sync,
    {
        self.scatter_count.inc();
        let n = self.shards.len();
        if self.threads <= 1 || n == 1 {
            return (0..n)
                .map(|s| f(s, self.read_engine(s)).map_err(ShardError::Engine))
                .collect();
        }
        let exec = Executor::new(self.threads.min(n));
        let metrics = ExecMetrics::new(exec.threads());
        let states = exec
            .run(
                (0..n).collect(),
                &metrics,
                || false,
                |_| Vec::new(),
                |state: &mut Vec<(usize, R)>, s, _h| -> std::result::Result<(), WhyNotError> {
                    let r = f(s, self.read_engine(s))?;
                    state.push((s, r));
                    Ok(())
                },
            )
            .map_err(ShardError::Engine)?;
        let mut merged: Vec<(usize, R)> = states.into_iter().flatten().collect();
        if merged.len() != n {
            return Err(ShardError::Config(
                "scatter lost a shard result".to_string(),
            ));
        }
        merged.sort_by_key(|&(s, _)| s);
        Ok(merged.into_iter().map(|(_, r)| r).collect())
    }

    /// Scatter-gather top-k: per-shard top-k lists (local ids mapped
    /// back to global), merged under the engine's total order
    /// `(score desc, id asc)` and truncated to `k`. Bit-identical to
    /// the single-engine list.
    pub fn top_k(&self, query: &SpatialKeywordQuery) -> Result<Vec<(ObjectId, f64)>> {
        let per_shard = self.scatter(|s, engine| {
            let hits = engine.top_k(query)?;
            let map = &self.shards[s].global_of_local;
            Ok(hits
                .into_iter()
                .map(|(local, score)| (map[local.0 as usize], score))
                .collect::<Vec<(ObjectId, f64)>>())
        })?;
        let merge_start = Instant::now();
        let mut all: Vec<(ObjectId, f64)> = per_shard.into_iter().flatten().collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        all.truncate(query.k);
        self.merge_ns.record_duration(merge_start.elapsed());
        Ok(all)
    }

    /// The global rank `R(M, q)` reconstructed from scattered per-shard
    /// dominator counts (strict dominators + 1).
    pub fn initial_rank(&self, question: &WhyNotQuestion) -> Result<usize> {
        let min_score = self.min_target_score(question);
        let counts =
            self.scatter(|_s, engine| engine.count_dominators(&question.query, min_score, None))?;
        let dominators: usize = counts
            .iter()
            .map(|c| match c {
                DominatorCount::Exact(n) | DominatorCount::AtLeast(n) => *n,
            })
            .sum();
        Ok(dominators + 1)
    }

    fn min_target_score(&self, question: &WhyNotQuestion) -> f64 {
        question
            .missing
            .iter()
            .map(|&id| self.mirror.score(self.mirror.object(id), &question.query))
            .fold(f64::INFINITY, f64::min)
    }

    /// Answers a why-not question with the scatter-gather solver: the
    /// reference sequential candidate order over the mirror, each
    /// candidate's rank verified by scattered shard-local dominator
    /// scans under the shared cross-shard bound. Always exact (no
    /// budget ladder); bit-identical to the single-engine solvers.
    pub fn whynot(&self, question: &WhyNotQuestion) -> Result<WhyNotAnswer> {
        let wall_start = Instant::now();
        question.validate(&self.mirror)?;
        let rank_start = Instant::now();
        let initial_rank = self.initial_rank(question)?;
        let phase_initial_rank = rank_start.elapsed();
        let ctx = WhyNotContext::new(&self.mirror, question, initial_rank)?;
        let enum_start = Instant::now();
        let enumerator = CandidateEnumerator::new(&ctx);
        let phase_enumeration = enum_start.elapsed();

        let verify_start = Instant::now();
        let bound = SharedBound::new(ctx.penalty.baseline_penalty());
        let mut best = ctx.baseline();
        let mut stats = AlgoStats {
            initial_rank: initial_rank as u64,
            ..AlgoStats::default()
        };
        'layers: for d in 1..=enumerator.max_edit_distance() {
            // Eqn. 6 early stop: the keyword penalty alone already
            // matches the best, and it only grows with d.
            if ctx.penalty.keyword_penalty(d) >= bound.value() {
                break 'layers;
            }
            for cand in enumerator.layer(d, true) {
                stats.candidates_total += 1;
                let p_c = bound.value();
                let limit = match ctx.penalty.rank_upper_limit(d, p_c) {
                    None => {
                        stats.pruned_by_bound += 1;
                        continue;
                    }
                    Some(usize::MAX) => None,
                    Some(r) => Some(r),
                };
                let targets = ctx.missing_targets(&cand.doc);
                let min_score = targets
                    .iter()
                    .map(|&(_, score)| score)
                    .fold(f64::INFINITY, f64::min);
                let q_s = ctx.query.with_doc(cand.doc.clone());
                stats.queries_run += 1;
                // Full-limit scatter: every shard counts under the same
                // tie-permissive limit; the abort/complete decision on
                // the gathered counts reproduces the single scan's.
                let counts =
                    self.scatter(|_s, engine| engine.count_dominators(&q_s, min_score, limit))?;
                let mut dominators = 0usize;
                let mut aborted = false;
                for c in &counts {
                    match c {
                        DominatorCount::Exact(n) => dominators += n,
                        DominatorCount::AtLeast(n) => {
                            dominators += n;
                            aborted = true;
                        }
                    }
                }
                if aborted || matches!(limit, Some(l) if dominators + 1 > l) {
                    stats.pruned_by_bound += 1;
                    continue;
                }
                let rank = dominators + 1;
                let penalty = ctx.penalty.penalty(d, rank);
                // Strict improvement in sequence order — the same
                // winner the solvers' total-order BestKey merge picks.
                if penalty < best.penalty {
                    best = RefinedQuery {
                        doc: cand.doc.clone(),
                        k: ctx.refined_k(rank),
                        rank,
                        edit_distance: d,
                        penalty,
                    };
                    bound.refresh(penalty);
                }
            }
        }
        stats.phase_verification = verify_start.elapsed();
        stats.phase_initial_rank = phase_initial_rank;
        stats.phase_enumeration = phase_enumeration;
        stats.bound_refreshes = bound.tightened();
        stats.wall = wall_start.elapsed();
        self.tightenings.add(bound.tightened());
        Ok(WhyNotAnswer {
            refined: best,
            stats,
            quality: AnswerQuality::Exact,
        })
    }
}

fn open_pool(path: &Path) -> Result<std::sync::Arc<BufferPool>> {
    let backend = if path.exists() {
        FileBackend::open(path)
    } else {
        FileBackend::create(path)
    }
    .map_err(|e| ShardError::Config(format!("{}: {e}", path.display())))?;
    Ok(std::sync::Arc::new(BufferPool::with_default_config(
        std::sync::Arc::new(backend),
    )))
}

/// Route-log payload: `[shard u32 LE][global id u32 LE][mutation]`.
fn encode_route(shard: usize, gid: u32, m: &Mutation) -> Vec<u8> {
    let body = m.encode();
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(shard as u32).to_le_bytes());
    out.extend_from_slice(&gid.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn decode_route(kind: u8, payload: &[u8]) -> wnsk_storage::Result<(usize, u32, Mutation)> {
    if payload.len() < 8 {
        return Err(wnsk_storage::StorageError::corrupt(
            "route log",
            "record shorter than its header",
        ));
    }
    let shard = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
    let gid = u32::from_le_bytes(payload[4..8].try_into().unwrap());
    let m = Mutation::decode(kind, &payload[8..])
        .map_err(|e| wnsk_storage::StorageError::corrupt("route log", e.to_string()))?;
    Ok((shard, gid, m))
}
