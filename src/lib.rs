//! # whynot-sk — Why-Not Spatial Keyword Top-k Queries via Keyword Adaption
//!
//! Facade crate re-exporting the whole workspace. See the README for a
//! tour; the paper is Chen, Xu, Lin, Jensen, Hu — *Answering Why-Not
//! Spatial Keyword Top-k Queries via Keyword Adaption*, ICDE 2016.
//!
//! A complete round trip — generate data, index it, query, ask why-not,
//! and verify the refinement:
//!
//! ```
//! use whynot_sk::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = generate(&DatasetSpec::tiny(7));
//! let engine = WhyNotEngine::build_in_memory(data.dataset)?
//!     .with_vocabulary(data.vocabulary);
//!
//! // An initial top-3 query anchored at some object's keywords.
//! let anchor = engine.dataset().object(ObjectId(5)).clone();
//! let query = SpatialKeywordQuery::new(Point::new(0.5, 0.5), anchor.doc, 3, 0.5);
//! let initial = engine.top_k(&query)?;
//! assert_eq!(initial.len(), 3);
//!
//! // Ask why an object outside the result is missing.
//! let missing = engine
//!     .dataset()
//!     .objects()
//!     .iter()
//!     .map(|o| o.id)
//!     .find(|&id| engine.dataset().rank_of(id, &query) == 10)
//!     .expect("some object ranks 10th");
//! let answer = engine.answer(&WhyNotQuestion::new(query.clone(), vec![missing], 0.5))?;
//!
//! // The refined query contains the missing object and never costs more
//! // than the basic k-enlargement (penalty λ).
//! assert!(answer.refined.penalty <= 0.5);
//! let refined = query.with_doc(answer.refined.doc.clone());
//! assert!(engine.dataset().rank_of(missing, &refined) <= answer.refined.k);
//! # Ok(())
//! # }
//! ```

pub use wnsk_core as core;
pub use wnsk_data as data;
pub use wnsk_geo as geo;
pub use wnsk_index as index;
pub use wnsk_storage as storage;
pub use wnsk_text as text;

/// Convenient glob-import surface for examples and applications.
pub mod prelude {
    pub use wnsk_core::{
        answer_advanced, answer_basic, answer_kcr, AdvancedOptions, KcrOptions, RefinedQuery,
        WhyNotAnswer, WhyNotEngine, WhyNotError, WhyNotQuestion,
    };
    pub use wnsk_data::{generate, DatasetSpec};
    pub use wnsk_geo::{Point, Rect, WorldBounds};
    pub use wnsk_index::{
        Dataset, KcrTree, ObjectId, SetRTree, SpatialKeywordQuery, SpatialObject,
    };
    pub use wnsk_text::{jaccard, CorpusStats, KeywordCountMap, KeywordSet, TermId, Vocabulary};
}
