//! Quickstart: generate a dataset, run a spatial keyword top-k query,
//! then ask a why-not question about an object missing from the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use whynot_sk::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A seeded synthetic dataset (EURO-like statistics, small scale).
    let generated = generate(&DatasetSpec::euro_like(0.01));
    println!(
        "dataset: {} ({} objects, {} distinct terms)",
        generated.spec.name,
        generated.dataset.len(),
        generated.vocabulary.len()
    );

    // 2. Build both disk-resident indexes (4 KiB pages, 4 MiB buffer,
    //    fanout 100 — the paper's §VII-A1 setup).
    let engine =
        WhyNotEngine::build_in_memory(generated.dataset)?.with_vocabulary(generated.vocabulary);

    // 3. An initial top-5 query: "find objects near (0.4, 0.6) matching
    //    these keywords".
    let anchor = engine.dataset().object(ObjectId(42)).clone();
    let query = SpatialKeywordQuery::new(Point::new(0.4, 0.6), anchor.doc.clone(), 5, 0.5);
    let result = engine.top_k(&query)?;
    println!(
        "\ninitial top-{} for {}:",
        query.k,
        engine.render_keywords(&query.doc)
    );
    for (rank, (id, score)) in result.iter().enumerate() {
        println!(
            "  #{:<2} {id:?} score {score:.4} {}",
            rank + 1,
            engine.render_keywords(&engine.dataset().object(*id).doc)
        );
    }

    // 4. Pick an object the user expected but that is missing, and ask
    //    why.
    let missing = engine
        .dataset()
        .objects()
        .iter()
        .map(|o| o.id)
        .find(|&id| engine.dataset().rank_of(id, &query) == 12)
        .expect("some object ranks 12th");
    println!(
        "\nwhy is {missing:?} {} not in the result? (it ranks {})",
        engine.render_keywords(&engine.dataset().object(missing).doc),
        engine.dataset().rank_of(missing, &query)
    );

    let question = WhyNotQuestion::new(query.clone(), vec![missing], 0.5);
    let answer = engine.answer(&question)?;
    println!(
        "refined query: keywords {} with k' = {} (penalty {:.4}, {} edits)",
        engine.render_keywords(&answer.refined.doc),
        answer.refined.k,
        answer.refined.penalty,
        answer.refined.edit_distance,
    );
    println!(
        "solved in {:.2} ms with {} page reads",
        answer.stats.wall.as_secs_f64() * 1e3,
        answer.stats.io
    );

    // 5. Verify: the refined query's top-k' now contains the object.
    let refined = query.with_doc(answer.refined.doc.clone());
    let rank = engine.dataset().rank_of(missing, &refined);
    assert!(rank <= answer.refined.k);
    println!(
        "verified: {missing:?} now ranks {rank} ≤ k' = {}",
        answer.refined.k
    );
    Ok(())
}
