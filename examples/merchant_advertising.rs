//! The paper's Example 2: a merchant opens a Sichuan restaurant near a
//! landmark and wants to know how to adapt the advertised keywords so the
//! restaurant enters the top-10 when customers search nearby. The
//! restaurant is the "missing object" of a why-not question posed against
//! the merchant's own draft keywords, and the three solvers are compared.
//!
//! ```text
//! cargo run --release --example merchant_advertising
//! ```

use whynot_sk::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A generated city of competing businesses…
    let generated = generate(&DatasetSpec::euro_like(0.005).with_seed(77));
    let mut vocab = generated.vocabulary.clone();
    let landmark = Point::new(0.35, 0.65);

    let mut objects: Vec<SpatialObject> = generated.dataset.objects().to_vec();

    // …a crowded restaurant quarter around the landmark (competitors with
    // short, generic listings score high on a generic query)…
    let competitors: &[(&[&str], (f64, f64))] = &[
        (&["cuisine"], (0.3502, 0.6502)),
        (&["cuisine"], (0.3498, 0.6497)),
        (&["cuisine", "bistro"], (0.3505, 0.6495)),
        (&["sichuan"], (0.3495, 0.6505)),
        (&["sichuan"], (0.3501, 0.6508)),
        (&["cuisine", "noodles"], (0.3492, 0.6492)),
        (&["cuisine", "grill"], (0.3510, 0.6510)),
        (&["sichuan", "teahouse"], (0.3488, 0.6512)),
        (&["cuisine"], (0.3515, 0.6488)),
        (&["cuisine", "buffet"], (0.3485, 0.6485)),
        (
            &["sichuan", "cuisine", "hotpot", "bar", "karaoke", "garden"],
            (0.3503, 0.6493),
        ),
        (&["cuisine", "express"], (0.3507, 0.6503)),
        (&["sichuan", "cuisine"], (0.3493, 0.6507)),
        (&["sichuan", "cuisine"], (0.3511, 0.6489)),
        (&["sichuan", "cuisine"], (0.3489, 0.6511)),
        (&["sichuan", "cuisine", "hotpot"], (0.3513, 0.6513)),
        (&["sichuan", "cuisine", "dumplings"], (0.3483, 0.6483)),
        (&["cuisine"], (0.3517, 0.6517)),
        (&["sichuan"], (0.3481, 0.6519)),
        (&["cuisine"], (0.3519, 0.6481)),
    ];
    for (tags, loc) in competitors {
        objects.push(SpatialObject {
            id: ObjectId(0),
            loc: Point::new(loc.0, loc.1),
            doc: KeywordSet::from_terms(tags.iter().map(|t| vocab.intern(t).unwrap())),
        });
    }

    // …plus the merchant's restaurant, listed with its true attributes.
    let tags = ["sichuan", "cuisine", "spicy", "noodles", "family"];
    let doc = KeywordSet::from_terms(tags.iter().map(|t| vocab.intern(t).unwrap()));
    objects.push(SpatialObject {
        id: ObjectId(0),
        loc: Point::new(0.358, 0.657), // two blocks from the landmark
        doc,
    });
    let dataset = Dataset::new(objects, WorldBounds::unit());
    let restaurant = ObjectId(dataset.len() as u32 - 1);
    let engine = WhyNotEngine::build_in_memory(dataset)?.with_vocabulary(vocab.clone());

    // The merchant checks the draft advert: "sichuan cuisine" near the
    // landmark — is the restaurant in the top-10?
    let draft = SpatialKeywordQuery::new(
        landmark,
        KeywordSet::from_terms([vocab.get("sichuan").unwrap(), vocab.get("cuisine").unwrap()]),
        10,
        0.3, // searching customers weigh text over distance
    );
    let rank = engine.dataset().rank_of(restaurant, &draft);
    println!(
        "draft keywords {} rank the restaurant {rank} near the landmark",
        engine.render_keywords(&draft.doc)
    );
    assert!(
        rank > draft.k,
        "the crowded quarter must push the restaurant out of the top-10"
    );

    // Why not? Ask all three solvers and compare their work.
    let question = WhyNotQuestion::new(draft.clone(), vec![restaurant], 0.5);
    println!(
        "\n{:<12} {:>10} {:>10} {:>9}  suggestion",
        "solver", "time(ms)", "page I/O", "penalty"
    );
    let answers = [
        ("BS", engine.answer_basic(&question)?),
        (
            "AdvancedBS",
            engine.answer_advanced(&question, AdvancedOptions::default())?,
        ),
        (
            "KcRBased",
            engine.answer_kcr(&question, KcrOptions::default())?,
        ),
    ];
    for (name, ans) in &answers {
        println!(
            "{name:<12} {:>10.2} {:>10} {:>9.4}  {} with k' = {}",
            ans.stats.wall.as_secs_f64() * 1e3,
            ans.stats.io,
            ans.refined.penalty,
            engine.render_keywords(&ans.refined.doc),
            ans.refined.k,
        );
    }
    let p = answers[0].1.refined.penalty;
    assert!(answers
        .iter()
        .all(|(_, a)| (a.refined.penalty - p).abs() < 1e-9));

    let best = &answers[2].1.refined;
    let refined = SpatialKeywordQuery::new(draft.loc, best.doc.clone(), best.k, draft.alpha);
    let new_rank = engine.dataset().rank_of(restaurant, &refined);
    println!(
        "\nadvertising {} puts the restaurant at rank {new_rank} (≤ {})",
        engine.render_keywords(&best.doc),
        best.k
    );
    Ok(())
}
