//! Multiple missing objects (§VI-A) and the approximate trade-off
//! (§VI-B): a user names several expected-but-missing objects at once,
//! and then trades solution quality for response time by shrinking the
//! candidate sample.
//!
//! ```text
//! cargo run --release --example multi_missing
//! ```

use whynot_sk::prelude::*;
use wnsk_data::workload::{generate_item, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generated = generate(&DatasetSpec::euro_like(0.01).with_seed(5));
    let vocab = generated.vocabulary.clone();
    let dataset = generated.dataset;

    // A workload item with three missing objects ranked 11–51.
    let wspec = WorkloadSpec {
        n_keywords: 4,
        k: 10,
        alpha: 0.5,
        missing_rank: 51,
        n_missing: 3,
        seed: 2024,
    };
    let item = generate_item(&dataset, &wspec).expect("workload must generate");
    let engine = WhyNotEngine::build_in_memory(dataset)?.with_vocabulary(vocab);

    println!(
        "initial query {} (top-{}), missing objects:",
        engine.render_keywords(&item.query.doc),
        item.query.k
    );
    for &m in &item.missing {
        println!(
            "  {m:?} {} — ranks {}",
            engine.render_keywords(&engine.dataset().object(m).doc),
            engine.dataset().rank_of(m, &item.query)
        );
    }

    let question = WhyNotQuestion::new(item.query.clone(), item.missing.clone(), 0.5);

    // Exact answer.
    let exact = engine.answer(&question)?;
    println!(
        "\nexact: {} with k' = {} (penalty {:.4}) in {:.2} ms / {} I/Os",
        engine.render_keywords(&exact.refined.doc),
        exact.refined.k,
        exact.refined.penalty,
        exact.stats.wall.as_secs_f64() * 1e3,
        exact.stats.io
    );
    // Every missing object is revived.
    let refined = item.query.with_doc(exact.refined.doc.clone());
    for &m in &item.missing {
        assert!(engine.dataset().rank_of(m, &refined) <= exact.refined.k);
    }

    // The approximate ladder: sample sizes vs quality.
    println!(
        "\n{:>8} {:>10} {:>10} {:>9}",
        "T", "time(ms)", "page I/O", "penalty"
    );
    for t in [10, 50, 200, 800] {
        let approx = engine.answer_approx(&question, t)?;
        println!(
            "{t:>8} {:>10.2} {:>10} {:>9.4}",
            approx.stats.wall.as_secs_f64() * 1e3,
            approx.stats.io,
            approx.refined.penalty
        );
        assert!(approx.refined.penalty >= exact.refined.penalty - 1e-9);
    }
    println!(
        "{:>8} {:>10.2} {:>10} {:>9.4}",
        "exact",
        exact.stats.wall.as_secs_f64() * 1e3,
        exact.stats.io,
        exact.refined.penalty
    );
    Ok(())
}
