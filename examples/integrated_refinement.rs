//! The "integrated framework" sketched in the paper's conclusion
//! (§VIII): given one why-not question, compare three refinement
//! channels — adapting the **keywords** (this paper), the **preference
//! α** (the authors' earlier work [8]), and the **query location**
//! (future work) — and surface whichever costs the user least.
//!
//! ```text
//! cargo run --release --example integrated_refinement
//! ```

use whynot_sk::prelude::*;
use wnsk_core::extensions::{refine_alpha, refine_location};
use wnsk_data::workload::{generate_item, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generated = generate(&DatasetSpec::euro_like(0.01).with_seed(13));
    let vocab = generated.vocabulary.clone();
    let dataset = generated.dataset;

    let item = generate_item(
        &dataset,
        &WorkloadSpec {
            n_keywords: 4,
            k: 10,
            alpha: 0.5,
            missing_rank: 41,
            n_missing: 1,
            seed: 4242,
        },
    )
    .expect("workload must generate");
    let missing = item.missing[0];
    let engine = WhyNotEngine::build_in_memory(dataset)?.with_vocabulary(vocab);

    println!(
        "initial query: {} @ ({:.2}, {:.2}), top-{}, α = {}",
        engine.render_keywords(&item.query.doc),
        item.query.loc.x,
        item.query.loc.y,
        item.query.k,
        item.query.alpha
    );
    println!(
        "missing object {missing:?} {} ranks {}",
        engine.render_keywords(&engine.dataset().object(missing).doc),
        engine.dataset().rank_of(missing, &item.query)
    );

    let question = WhyNotQuestion::new(item.query.clone(), vec![missing], 0.5);

    // Channel 1: keyword adaption (the paper's contribution).
    let kw = engine.answer(&question)?;
    // Channel 2: preference adaption (exact, extension).
    let alpha = refine_alpha(engine.dataset(), &question)?;
    // Channel 3: location refinement (heuristic, extension).
    let loc = refine_location(engine.dataset(), &question, 16)?;

    println!("\n{:<12} {:>9}  suggestion", "channel", "penalty");
    println!(
        "{:<12} {:>9.4}  keywords → {} (k' = {})",
        "keywords",
        kw.refined.penalty,
        engine.render_keywords(&kw.refined.doc),
        kw.refined.k
    );
    println!(
        "{:<12} {:>9.4}  α → {:.3} (k' = {})",
        "alpha", alpha.penalty, alpha.alpha, alpha.k
    );
    println!(
        "{:<12} {:>9.4}  loc → ({:.3}, {:.3}) (k' = {})",
        "location", loc.penalty, loc.loc.x, loc.loc.y, loc.k
    );

    let best = [
        ("keywords", kw.refined.penalty),
        ("alpha", alpha.penalty),
        ("location", loc.penalty),
    ]
    .into_iter()
    .min_by(|a, b| a.1.total_cmp(&b.1))
    .unwrap();
    println!(
        "\ncheapest refinement channel: {} (penalty {:.4})",
        best.0, best.1
    );

    // Whatever channel wins, each refinement on its own revives m.
    let q = &item.query;
    assert!(
        engine
            .dataset()
            .rank_of(missing, &q.with_doc(kw.refined.doc.clone()))
            <= kw.refined.k
    );
    assert!(
        engine.dataset().rank_of(
            missing,
            &SpatialKeywordQuery::new(q.loc, q.doc.clone(), q.k, alpha.alpha)
        ) <= alpha.k
    );
    assert!(
        engine.dataset().rank_of(
            missing,
            &SpatialKeywordQuery::new(loc.loc, q.doc.clone(), q.k, q.alpha)
        ) <= loc.k
    );
    Ok(())
}
