//! The paper's Example 1: a conference attendee searches for the top-3
//! hotels near the venue described as "clean" and "comfortable", is
//! surprised that a well-known international hotel is missing, and asks
//! the system why — receiving adapted keywords that bring it (and other
//! similar hotels) into the result.
//!
//! ```text
//! cargo run --release --example hotel_finder
//! ```

use whynot_sk::prelude::*;

struct HotelSpec {
    name: &'static str,
    loc: (f64, f64),
    tags: &'static [&'static str],
}

/// A hand-curated city block around the conference venue at (0.5, 0.5).
const HOTELS: &[HotelSpec] = &[
    HotelSpec {
        name: "Budget Inn Central",
        loc: (0.505, 0.495),
        tags: &["clean", "budget", "hostel"],
    },
    HotelSpec {
        name: "City Comfort Rooms",
        loc: (0.492, 0.508),
        tags: &["clean", "comfortable", "rooms"],
    },
    HotelSpec {
        name: "Station Sleep Lodge",
        loc: (0.498, 0.488),
        tags: &["comfortable", "clean", "lodge"],
    },
    HotelSpec {
        name: "Grand International",
        loc: (0.52, 0.53),
        tags: &["luxury", "international", "spa", "comfortable"],
    },
    HotelSpec {
        name: "Imperial Plaza",
        loc: (0.55, 0.47),
        tags: &["luxury", "international", "plaza"],
    },
    HotelSpec {
        name: "Old Town B&B",
        loc: (0.46, 0.54),
        tags: &["clean", "breakfast", "quiet"],
    },
    HotelSpec {
        name: "Airport Express Hotel",
        loc: (0.8, 0.2),
        tags: &["clean", "comfortable", "airport"],
    },
    HotelSpec {
        name: "Riverside Boutique",
        loc: (0.43, 0.49),
        tags: &["boutique", "spa", "comfortable"],
    },
    HotelSpec {
        name: "Metro Capsules",
        loc: (0.51, 0.51),
        tags: &["budget", "capsule", "clean"],
    },
    HotelSpec {
        name: "Harbor View Suites",
        loc: (0.58, 0.58),
        tags: &["luxury", "suites", "view", "spa"],
    },
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut vocab = Vocabulary::new();
    let objects: Vec<SpatialObject> = HOTELS
        .iter()
        .map(|h| SpatialObject {
            id: ObjectId(0),
            loc: Point::new(h.loc.0, h.loc.1),
            doc: KeywordSet::from_terms(h.tags.iter().map(|t| vocab.intern(t).unwrap())),
        })
        .collect();
    let dataset = Dataset::new(objects, WorldBounds::unit());
    let engine = WhyNotEngine::build_in_memory(dataset)?.with_vocabulary(vocab.clone());

    // The attendee's initial query: top-3 "clean comfortable" hotels near
    // the venue.
    let venue = Point::new(0.5, 0.5);
    let query = SpatialKeywordQuery::new(
        venue,
        KeywordSet::from_terms([
            vocab.get("clean").unwrap(),
            vocab.get("comfortable").unwrap(),
        ]),
        3,
        0.5,
    );
    println!(
        "top-3 hotels near the venue for {}:",
        engine.render_keywords(&query.doc)
    );
    for (i, (id, score)) in engine.top_k(&query)?.iter().enumerate() {
        println!(
            "  #{} {} (score {score:.4})",
            i + 1,
            HOTELS[id.index()].name
        );
    }

    // The user expected the Grand International.
    let grand = ObjectId(3);
    let rank = engine.dataset().rank_of(grand, &query);
    println!(
        "\n\"Why is the {} missing?\" (it ranks {rank})",
        HOTELS[grand.index()].name
    );

    let question = WhyNotQuestion::new(query.clone(), vec![grand], 0.5);
    let answer = engine.answer(&question)?;
    println!(
        "suggested refinement: search {} with k' = {} (penalty {:.4})",
        engine.render_keywords(&answer.refined.doc),
        answer.refined.k,
        answer.refined.penalty
    );

    let refined = query.with_doc(answer.refined.doc.clone());
    println!("\nrefined top-{}:", answer.refined.k);
    let mut found = false;
    let refined_q = SpatialKeywordQuery::new(
        refined.loc,
        refined.doc.clone(),
        answer.refined.k,
        refined.alpha,
    );
    for (i, (id, score)) in engine.top_k(&refined_q)?.iter().enumerate() {
        let marker = if *id == grand {
            found = true;
            "  ← the expected hotel"
        } else {
            ""
        };
        println!(
            "  #{} {} (score {score:.4}){marker}",
            i + 1,
            HOTELS[id.index()].name
        );
    }
    assert!(found, "the refined query must contain the missing hotel");
    Ok(())
}
