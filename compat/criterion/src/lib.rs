//! Offline drop-in subset of `criterion`: enough of the API
//! (`Criterion`, `BenchmarkGroup`, `Bencher`, `BenchmarkId`,
//! `criterion_group!` / `criterion_main!`, `black_box`) to compile and
//! run this workspace's benches with plain wall-clock timing.
//!
//! Vendored shim — this workspace builds without crates.io access; see
//! `compat/` for the other stand-ins. There is no statistical analysis:
//! each benchmark runs a short warm-up, then `sample_size` timed
//! batches, and prints min/mean/max per iteration.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives closures under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<R>(&mut self, id: impl Display, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, routine, self.criterion.quick);
        self
    }

    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(
            &full,
            self.sample_size,
            |b| routine(b, input),
            self.criterion.quick,
        );
        self
    }

    pub fn finish(&mut self) {}
}

fn run_benchmark<R: FnMut(&mut Bencher)>(name: &str, samples: usize, mut routine: R, quick: bool) {
    let samples = if quick { samples.min(2) } else { samples };
    // Warm-up: one measured iteration, also used to size batches so a
    // sample stays in the ~10ms-100ms range.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(if quick { 10 } else { 50 });
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        per_iter_times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let min = per_iter_times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter_times.iter().cloned().fold(0.0f64, f64::max);
    let mean = per_iter_times.iter().sum::<f64>() / per_iter_times.len() as f64;
    println!(
        "{name:<50} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        samples,
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// The benchmark context handed to every target function.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `--quick` (also respected by the real crate) caps sampling for
        // smoke runs; handy in CI.
        let quick = std::env::args().any(|a| a == "--quick");
        Criterion { quick }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    pub fn bench_function<R>(&mut self, id: &str, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        run_benchmark(id, 10, routine, self.quick);
        self
    }
}

/// Collects benchmark target functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion { quick: true };
        target(&mut c);
    }
}
