//! Offline drop-in subset of the `bytes` crate: the `Buf` / `BufMut`
//! little-endian accessors used by `wnsk-storage`'s codec and an
//! `Arc`-backed, cheaply clonable `Bytes` buffer used by the buffer pool.
//!
//! Vendored shim — this workspace builds without crates.io access; see
//! `compat/` for the other stand-ins.

use std::ops::Deref;
use std::sync::Arc;

/// Read-side cursor trait over a contiguous byte source.
///
/// Only the fixed-width little-endian getters the codec needs are
/// provided. Like the real crate, getters panic when the source is too
/// short; callers are expected to check [`Buf::remaining`] first.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.len() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write-side trait appending fixed-width little-endian values.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable, reference-counted byte buffer. Cloning is O(1); the
/// underlying allocation is shared.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes {
            data: Arc::from([]),
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_u16_le(513);
        out.put_u32_le(70_000);
        out.put_u64_le(1 << 40);
        out.put_f64_le(0.25);
        out.put_slice(b"xy");

        let mut cur: &[u8] = &out;
        assert_eq!(cur.remaining(), 1 + 2 + 4 + 8 + 8 + 2);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 513);
        assert_eq!(cur.get_u32_le(), 70_000);
        assert_eq!(cur.get_u64_le(), 1 << 40);
        assert_eq!(cur.get_f64_le(), 0.25);
        assert_eq!(cur, b"xy");
    }

    #[test]
    fn bytes_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &c[..]);
        assert_eq!(b.len(), 3);
    }
}
