//! Offline drop-in subset of `crossbeam`: just `thread::scope` /
//! `Scope::spawn` / `ScopedJoinHandle::join`, implemented on top of
//! `std::thread::scope` (stable since 1.63).
//!
//! Vendored shim — this workspace builds without crates.io access; see
//! `compat/` for the other stand-ins.
//!
//! Semantic difference from the real crate: if a spawned thread panics
//! and its handle is joined with `.expect(..)` (the only pattern used in
//! this workspace), the panic propagates out of `scope` as a panic
//! rather than an `Err`. All callers here `.expect` the scope result
//! anyway, so the observable behaviour — a panic — is the same.

pub mod thread {
    /// Spawn scope handed to the `scope` closure and to each spawned
    /// thread's closure (crossbeam passes `&Scope` so workers can spawn
    /// nested threads; the workers in this workspace ignore it).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; `join` returns the closure's result or
    /// the payload of its panic.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope that joins all still-running spawned
    /// threads before returning.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        let counter_ref = &counter;
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    scope.spawn(move |_| {
                        counter_ref.fetch_add(1, Ordering::SeqCst);
                        i * 2
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum::<usize>()
        })
        .expect("scope failed");
        assert_eq!(total, 2 + 4 + 6);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
