//! Offline drop-in subset of `crossbeam`: `thread::scope` /
//! `Scope::spawn` / `ScopedJoinHandle::join` on top of
//! `std::thread::scope` (stable since 1.63), plus the `deque` module's
//! `Worker` / `Stealer` / `Steal` / `Injector` work-stealing surface.
//!
//! Vendored shim — this workspace builds without crates.io access; see
//! `compat/` for the other stand-ins.
//!
//! Semantic difference from the real crate: if a spawned thread panics
//! and its handle is joined with `.expect(..)` (the only pattern used in
//! this workspace), the panic propagates out of `scope` as a panic
//! rather than an `Err`. All callers here `.expect` the scope result
//! anyway, so the observable behaviour — a panic — is the same.

pub mod thread {
    /// Spawn scope handed to the `scope` closure and to each spawned
    /// thread's closure (crossbeam passes `&Scope` so workers can spawn
    /// nested threads; the workers in this workspace ignore it).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; `join` returns the closure's result or
    /// the payload of its panic.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope that joins all still-running spawned
    /// threads before returning.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod deque {
    //! Work-stealing deques, API-compatible with `crossbeam-deque`'s
    //! FIFO flavour: the owner pushes to and pops from the front of its
    //! own queue; thieves steal from the same end through [`Stealer`]
    //! handles, so benefit-ordered task lists are consumed roughly in
    //! order regardless of who executes each task.
    //!
    //! The real crate is lock-free; this offline shim is a
    //! `Mutex<VecDeque>` with the same observable semantics. `Steal`
    //! keeps the three-state shape (`Empty` / `Success` / `Retry`) so
    //! caller retry loops port verbatim, but the mutex implementation
    //! never needs to report `Retry`.

    use parking_lot::Mutex;
    use std::collections::VecDeque;
    use std::sync::Arc;

    /// Outcome of one steal attempt.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried (never produced
        /// by this shim; kept for API compatibility).
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                Steal::Empty | Steal::Retry => None,
            }
        }

        /// `true` when the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    /// The owner side of a work-stealing queue (FIFO flavour).
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO queue.
        pub fn new_fifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Creates a [`Stealer`] handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }

        /// Enqueues a task at the back.
        pub fn push(&self, task: T) {
            self.queue.lock().push_back(task);
        }

        /// Dequeues the front task, if any.
        pub fn pop(&self) -> Option<T> {
            self.queue.lock().pop_front()
        }

        /// `true` when the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().is_empty()
        }

        /// Number of tasks currently queued.
        pub fn len(&self) -> usize {
            self.queue.lock().len()
        }
    }

    /// A thief-side handle to another worker's queue.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Attempts to steal the front task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// `true` when the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().is_empty()
        }
    }

    /// A shared FIFO injection queue (global task inbox).
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task at the back.
        pub fn push(&self, task: T) {
            self.queue.lock().push_back(task);
        }

        /// Attempts to steal the front task.
        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// `true` when the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.queue.lock().is_empty()
        }

        /// Number of tasks currently queued.
        pub fn len(&self) -> usize {
            self.queue.lock().len()
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_worker_preserves_order_and_shares_with_stealers() {
        use crate::deque::{Steal, Worker};
        let w: Worker<u32> = Worker::new_fifo();
        let s = w.stealer();
        for i in 0..4 {
            w.push(i);
        }
        assert_eq!(w.len(), 4);
        assert_eq!(w.pop(), Some(0), "owner pops FIFO");
        assert_eq!(s.steal(), Steal::Success(1), "thieves steal FIFO too");
        assert_eq!(s.clone().steal(), Steal::Success(2));
        assert_eq!(w.pop(), Some(3));
        assert!(w.is_empty() && s.is_empty());
        assert_eq!(s.steal(), Steal::Empty);
        assert_eq!(Steal::Success(7).success(), Some(7));
        assert!(Steal::<u32>::Empty.is_empty());
    }

    #[test]
    fn injector_feeds_many_threads_exactly_once() {
        use crate::deque::{Injector, Steal};
        let inj: Injector<usize> = Injector::new();
        for i in 0..100 {
            inj.push(i);
        }
        assert_eq!(inj.len(), 100);
        let total = AtomicUsize::new(0);
        let seen = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| loop {
                    match inj.steal() {
                        Steal::Success(v) => {
                            total.fetch_add(v, Ordering::Relaxed);
                            seen.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Empty => break,
                        Steal::Retry => continue,
                    }
                });
            }
        });
        assert_eq!(seen.load(Ordering::Relaxed), 100);
        assert_eq!(total.load(Ordering::Relaxed), 99 * 100 / 2);
        assert!(inj.is_empty());
    }

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        let counter_ref = &counter;
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    scope.spawn(move |_| {
                        counter_ref.fetch_add(1, Ordering::SeqCst);
                        i * 2
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum::<usize>()
        })
        .expect("scope failed");
        assert_eq!(total, 2 + 4 + 6);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
