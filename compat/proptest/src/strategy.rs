//! The `Strategy` trait and the combinators the workspace's property
//! tests use: numeric ranges, tuples, `prop_map`, `Just`, and
//! `any::<T>()` over [`Arbitrary`] types.

use crate::test_runner::TestRng;
use rand::{Rng, SampleUniform, StandardSample};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real crate there is no value tree / shrinking: a strategy
/// is just a deterministic function of the test RNG.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.inner.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.inner.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                StandardSample::sample_standard(&mut rng.inner)
            }
        }
    )*};
}
impl_arbitrary_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

/// Strategy for an [`Arbitrary`] type's full domain.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — uniform over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
