//! Offline drop-in subset of `proptest`: the `proptest!` test macro,
//! `prop_assert*` / `prop_assume!`, and the strategy combinators this
//! workspace's property tests use (ranges, tuples, `prop_map`,
//! `collection::vec`, `sample::select`, `sample::Index`, `any`).
//!
//! Vendored shim — this workspace builds without crates.io access; see
//! `compat/` for the other stand-ins. Differences from the real crate:
//! no shrinking (a failing case reports its values' seed, not a
//! minimised counterexample) and a smaller default case count (32).

pub mod strategy;

pub use strategy::{any, Arbitrary, Just, Strategy};

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test deterministic RNG. Seeded from the test's module path so
    /// every run of the suite explores the same cases.
    pub struct TestRng {
        pub(crate) inner: StdRng,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the fully qualified test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assert*` failed: the property is violated.
        Fail(String),
        /// `prop_assume!` failed: the case is outside the property's
        /// domain and is re-drawn without counting against `cases`.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Runner configuration. Only `cases` is honoured by the shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length specification accepted by [`vec()`]: a fixed `usize` or a
    /// (half-open or inclusive) range.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.inner.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.inner.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy generating a `Vec` whose elements come from `element`
    /// and whose length is drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }
}

pub mod sample {
    use crate::strategy::{Arbitrary, Strategy};
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A position into a not-yet-known collection; resolved against a
    /// concrete length with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(pub(crate) u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.inner.gen())
        }
    }

    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.items[rng.inner.gen_range(0..self.items.len())].clone()
        }
    }

    /// Strategy drawing uniformly from a fixed list of options.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select: empty choice list");
        Select { items }
    }
}

/// The strategy prelude: everything a `proptest!` test file needs.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of the real prelude's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                // Strategy expressions are evaluated once per test; the
                // loop body shadows each name with a sampled value.
                $(let $arg = $strat;)*
                let mut __cases = 0u32;
                let mut __rejects = 0u32;
                while __cases < __config.cases {
                    let __result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(let $arg = $crate::Strategy::new_value(&$arg, &mut __rng);)*
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match __result {
                        Ok(()) => __cases += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            __rejects += 1;
                            assert!(
                                __rejects < 1 << 16,
                                "proptest: too many prop_assume! rejections in {} \
                                 ({} cases passed)",
                                stringify!($name),
                                __cases,
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed: {} (case {} of {})\n{}",
                                stringify!($name),
                                __cases + 1,
                                __config.cases,
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a property inside `proptest!`, failing the current case (not
/// panicking outright) so the runner can report it coherently.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), __l, __r,
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
        );
    }};
}

/// Discards the current case (without failing) when its inputs fall
/// outside the property's domain; the runner draws a replacement.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds and tuples/maps compose.
        #[test]
        fn ranges_and_maps(
            a in 0u32..40,
            b in -100.0..100.0f64,
            c in (1usize..8, 0u64..64).prop_map(|(x, y)| x as u64 + y),
        ) {
            prop_assert!(a < 40);
            prop_assert!((-100.0..100.0).contains(&b));
            prop_assert!(c >= 1);
        }

        /// `collection::vec` honours both fixed and ranged sizes.
        #[test]
        fn vec_sizes(
            fixed in crate::collection::vec(0u32..5, 8),
            ranged in crate::collection::vec(0u32..5, 0..12),
            nested in crate::collection::vec(crate::collection::vec(0u32..3, 0..4), 0..6),
        ) {
            prop_assert_eq!(fixed.len(), 8);
            prop_assert!(ranged.len() < 12);
            prop_assert!(nested.iter().all(|v| v.len() < 4));
        }

        /// `any`, `Index`, `select`, and `prop_assume` all function.
        #[test]
        fn sampling(
            byte in any::<u8>(),
            pick in any::<prop::sample::Index>(),
            choice in prop::sample::select(vec![2usize, 3, 5, 7]),
        ) {
            prop_assume!(byte != 255);
            prop_assert!(byte < 255);
            prop_assert!(pick.index(10) < 10);
            prop_assert!([2, 3, 5, 7].contains(&choice));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
