//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of external crates it leans on are vendored as minimal
//! shims under `compat/`. Only the surface actually used by the `wnsk-*`
//! crates is implemented: `Mutex` / `RwLock` with panic-free (poison
//! swallowing) lock acquisition and `into_inner`.

use std::sync;

/// A mutex whose `lock` never returns a poison error (matching
/// `parking_lot::Mutex`). A poisoned std mutex is recovered silently.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock mirroring `parking_lot::RwLock`'s non-poisoning
/// `read` / `write` signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
