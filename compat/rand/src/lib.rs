//! Offline drop-in subset of `rand` 0.8: the `Rng` / `SeedableRng` /
//! `RngCore` traits and a deterministic `StdRng` (xoshiro256** seeded via
//! SplitMix64).
//!
//! Vendored shim — this workspace builds without crates.io access; see
//! `compat/` for the other stand-ins. The stream differs from upstream
//! `StdRng` (which is ChaCha12); nothing in this workspace depends on
//! the exact stream, only on determinism for a fixed seed.

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full value domain
/// (`rand`'s `Standard` distribution).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform range sampling (`rand`'s `SampleUniform`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`lo < hi` checked by the caller).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]` (`lo <= hi` checked by the caller).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = f64::sample_standard(rng);
        let v = lo + (hi - lo) * u;
        // Guard against rounding up to `hi` itself.
        if v < hi {
            v
        } else {
            lo
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let v = lo + (hi - lo) * f32::sample_standard(rng);
        if v < hi {
            v
        } else {
            lo
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f32::sample_standard(rng)
    }
}

/// Unbiased uniform draw from `[0, n)`; `n == 0` means the full u64 domain.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    if n == 0 {
        return rng.next_u64();
    }
    // Rejection sampling on the top of the range (Lemire-style threshold).
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same engine as [`StdRng`]; kept distinct to mirror `rand`'s API.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding scheme.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen_range(0..1000u64)).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen_range(0..1000u64)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.gen_range(0..1000u64)).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1..=6);
            assert!((1..=6).contains(&w));
            let f = r.gen_range(-0.05..0.05);
            assert!((-0.05..0.05).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_cover_domain() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[r.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
